"""Structured trace recording.

Traces are the evidence the verification layer works from: every protocol
action (request sent, edge blackened, probe received, deadlock declared, ...)
is recorded as a :class:`TraceEvent` with the virtual time and a payload
dict.  Tests replay traces to check temporal claims such as QRP2's "on a
black cycle *at the time the probe is received*".

Fan-out is category-indexed: subscribers may register for specific
categories, and :meth:`Tracer.record` dispatches only to the wildcard list
plus the matching category's list.  When recording is disabled and a
category has no subscriber, ``record`` returns after one set lookup without
building a :class:`TraceEvent` -- untraced categories cost (almost) zero,
which is what lets big sweeps run with ``trace=False`` while on-line
observers still watch the handful of categories they care about.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

Subscriber = Callable[["TraceEvent"], None]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence.

    ``category`` is a dotted name such as ``"basic.probe.received"`` or
    ``"ddb.deadlock.declared"``; ``details`` carries event-specific fields.
    """

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class Tracer:
    """Append-only trace log with category filtering.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where only metrics matter; ``record`` then becomes a cheap no-op for
    every category nobody subscribed to.  Subscribers registered with
    :meth:`subscribe` are invoked synchronously on every matching recorded
    event and are how the on-line invariant checkers hook into a running
    simulation.
    """

    __slots__ = (
        "_by_category",
        "_enabled",
        "_events",
        "_idle",
        "_subscribers",
        "_wants_all",
    )

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._events: list[TraceEvent] = []
        #: wildcard subscribers: see every recorded event.
        self._subscribers: list[Subscriber] = []
        #: category-scoped subscribers: see only their categories' events.
        self._by_category: dict[str, list[Subscriber]] = {}
        self._idle = not enabled
        self._wants_all = enabled

    @property
    def enabled(self) -> bool:
        """Whether events are appended to the in-memory log."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._recompute_flags()

    @property
    def idle(self) -> bool:
        """True when no recorded event could reach anyone.

        Precomputed on every ``enabled`` flip and (un)subscription, so hot
        call sites (``NodeContext.trace``, ``Simulator.trace_now``) pay one
        attribute read -- not a set lookup -- on the ``trace=False``
        no-subscriber fast path the big sweeps run on.
        """
        return self._idle

    def _recompute_flags(self) -> None:
        """Refresh the two precomputed dispatch flags.

        ``_idle`` short-circuits everything when nobody could see an
        event; ``_wants_all`` short-circuits the per-category lookup when
        every event is seen anyway (log enabled or a wildcard subscriber
        attached).  Both exist so the hot guards below stay at one or two
        attribute reads -- the cold-subscribed regime every protocol
        system runs in (systems attach their own category observers).
        """
        self._idle = not (self._enabled or self._subscribers or self._by_category)
        self._wants_all = self._enabled or bool(self._subscribers)

    def wants(self, category: str) -> bool:
        """True when recording ``category`` now would reach anyone.

        Call sites with expensive payloads (the network builds a kwargs
        dict per message) use this to skip the :meth:`record` call
        entirely on untraced categories.
        """
        if self._idle:
            return False
        return self._wants_all or category in self._by_category

    def record(self, time: float, category: str, **details: Any) -> None:
        """Record one event (no-op when disabled and nobody subscribed)."""
        if self._idle:
            return
        targeted = self._by_category.get(category)
        if targeted is None and not self._wants_all:
            return
        event = TraceEvent(time=time, category=category, details=details)
        if self._enabled:
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        if targeted is not None:
            for subscriber in targeted:
                subscriber(event)

    def subscribe(
        self, callback: Subscriber, categories: Iterable[str] | None = None
    ) -> None:
        """Invoke ``callback`` synchronously for every future matching event.

        With ``categories=None`` (the default) the callback sees every
        event.  Passing an iterable of category names scopes the callback
        to exactly those categories; all *other* categories then stay on
        the zero-cost path when recording is disabled.
        """
        if categories is None:
            self._subscribers.append(callback)
            self._recompute_flags()
            return
        names = tuple(categories)
        if not names:
            raise ValueError("categories must be None (wildcard) or non-empty")
        for name in names:
            self._by_category.setdefault(name, []).append(callback)
        self._recompute_flags()

    def unsubscribe(self, callback: Subscriber) -> None:
        """Detach a subscriber registered with :meth:`subscribe`.

        Removes one wildcard registration if present; otherwise removes the
        callback from every category list it appears in (one occurrence
        each), i.e. one ``subscribe(cb, categories=...)`` call is undone by
        one ``unsubscribe(cb)``.  Raises :class:`ValueError` if ``callback``
        is not currently subscribed -- a silent no-op here would hide
        double-detach bugs in invariant checkers.
        """
        try:
            self._subscribers.remove(callback)
            self._recompute_flags()
            return
        except ValueError:
            pass
        removed = False
        for name in list(self._by_category):
            listeners = self._by_category[name]
            try:
                listeners.remove(callback)
                removed = True
            except ValueError:
                continue
            if not listeners:
                del self._by_category[name]
        if not removed:
            raise ValueError(f"callback {callback!r} is not subscribed to this tracer")
        self._recompute_flags()

    @contextmanager
    def subscribed(
        self, callback: Subscriber, categories: Iterable[str] | None = None
    ) -> Iterator[None]:
        """Context manager: subscribe ``callback`` for the ``with`` body only.

        Span builders and invariant checkers use this to observe one bounded
        run without leaking a subscription into later phases::

            with tracer.subscribed(collector.on_event):
                system.run_to_quiescence()
        """
        self.subscribe(callback, categories=categories)
        try:
            yield
        finally:
            self.unsubscribe(callback)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All events, or those whose category matches exactly."""
        if category is None:
            return list(self._events)
        return [event for event in self._events if event.category == category]

    def events_with_prefix(self, prefix: str) -> list[TraceEvent]:
        """All events whose category starts with ``prefix``."""
        return [event for event in self._events if event.category.startswith(prefix)]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
