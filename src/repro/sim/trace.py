"""Structured trace recording.

Traces are the evidence the verification layer works from: every protocol
action (request sent, edge blackened, probe received, deadlock declared, ...)
is recorded as a :class:`TraceEvent` with the virtual time and a payload
dict.  Tests replay traces to check temporal claims such as QRP2's "on a
black cycle *at the time the probe is received*".
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``category`` is a dotted name such as ``"basic.probe.received"`` or
    ``"ddb.deadlock.declared"``; ``details`` carries event-specific fields.
    """

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class Tracer:
    """Append-only trace log with category filtering.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where only metrics matter; ``record`` then becomes a cheap no-op.
    Subscribers registered with :meth:`subscribe` are invoked synchronously
    on every recorded event and are how the on-line invariant checkers hook
    into a running simulation.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(self, time: float, category: str, **details: Any) -> None:
        """Record one event (no-op when disabled and nobody subscribes)."""
        if not self.enabled and not self._subscribers:
            return
        event = TraceEvent(time=time, category=category, details=details)
        if self.enabled:
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` synchronously for every future event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Detach a subscriber registered with :meth:`subscribe`.

        Raises :class:`ValueError` if ``callback`` is not currently
        subscribed -- a silent no-op here would hide double-detach bugs in
        invariant checkers.  If the same callback was subscribed more than
        once, one registration is removed per call.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            raise ValueError(
                f"callback {callback!r} is not subscribed to this tracer"
            ) from None

    @contextmanager
    def subscribed(self, callback: Callable[[TraceEvent], None]) -> Iterator[None]:
        """Context manager: subscribe ``callback`` for the ``with`` body only.

        Span builders and invariant checkers use this to observe one bounded
        run without leaking a subscription into later phases::

            with tracer.subscribed(collector.on_event):
                system.run_to_quiescence()
        """
        self.subscribe(callback)
        try:
            yield
        finally:
            self.unsubscribe(callback)

    def events(self, category: str | None = None) -> list[TraceEvent]:
        """All events, or those whose category matches exactly."""
        if category is None:
            return list(self._events)
        return [event for event in self._events if event.category == category]

    def events_with_prefix(self, prefix: str) -> list[TraceEvent]:
        """All events whose category starts with ``prefix``."""
        return [event for event in self._events if event.category.startswith(prefix)]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
