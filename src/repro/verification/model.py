"""A pure-functional specification of the basic-model protocol.

This is a *second, independent* implementation of sections 2-3, written in
the style of a model-checker specification: immutable states, a transition
function, and predicates -- no simulator, no callbacks, no time.  The
explorer enumerates every interleaving of message deliveries and scripted
driver actions over these states, mechanically verifying:

* **QRP2 / Theorem 2** in every reachable state: whenever an initiator
  declares, it is on an all-black cycle in that very state;
* **QRP1 / Theorem 1** in every terminal state: every computation that was
  initiated while its initiator was on a dark cycle has declared.

State representation (all tuples/frozensets, hashable):

* ``channels[(i, j)]`` -- FIFO queue of messages in flight from i to j;
* ``waiting_for[i]`` -- i's outgoing edges (request sent, no reply yet);
* ``holding_from[i]`` -- i's incoming black edges (requests received,
  replies not sent);
* ``records[i]`` -- i's probe-engine state: (initiator, sequence,
  propagated) triples, latest per initiator;
* ``declared`` -- (vertex, sequence) pairs for which A1 fired;
* ``obliged`` -- computations initiated while on a dark cycle (QRP1's
  antecedent), to be checked against ``declared`` at terminal states.

Edge colours are derived, exactly as in the paper: edge (i, j) exists iff
``j in waiting_for[i]``; it is *grey* while the request is in channel
(i, j), *black* while ``i in holding_from[j]``, *white* while the reply is
in channel (j, i).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace

# ----------------------------------------------------------------------
# Messages (wire format of the model)
# ----------------------------------------------------------------------

#: ("req", sender) | ("rep", sender) | ("probe", initiator, sequence)
Message = tuple

# ----------------------------------------------------------------------
# Driver actions (the scripted underlying computation)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """Vertex ``source`` sends requests to ``targets`` (G1)."""

    source: int
    targets: tuple[int, ...]


@dataclass(frozen=True)
class Reply:
    """Vertex ``source`` replies to ``requester`` (G3: must be active).

    Not enabled until the request has been received; the explorer defers
    it behind deliveries when necessary.
    """

    source: int
    requester: int


@dataclass(frozen=True)
class Initiate:
    """Vertex ``source`` starts a probe computation (A0)."""

    source: int


ScriptAction = Request | Reply | Initiate


@dataclass(frozen=True)
class Deliver:
    """Deliver the head message of channel ``(source, target)``."""

    source: int
    target: int


Action = ScriptAction | Deliver

# ----------------------------------------------------------------------
# State
# ----------------------------------------------------------------------

Channels = tuple[tuple[tuple[int, int], tuple[Message, ...]], ...]


@dataclass(frozen=True)
class ModelState:
    n: int
    channels: Channels
    waiting_for: tuple[frozenset, ...]
    holding_from: tuple[frozenset, ...]
    #: per-vertex, sorted tuple of (initiator, sequence, propagated)
    records: tuple[tuple[tuple[int, int, bool], ...], ...]
    #: per-vertex next computation sequence number
    next_sequence: tuple[int, ...]
    declared: frozenset
    obliged: frozenset
    script: tuple[ScriptAction, ...]
    script_pc: int

    # -- channel helpers ------------------------------------------------

    def channel(self, source: int, target: int) -> tuple[Message, ...]:
        for key, queue in self.channels:
            if key == (source, target):
                return queue
        return ()

    def _with_channel(self, source: int, target: int, queue: tuple[Message, ...]) -> Channels:
        others = tuple(
            (key, q) for key, q in self.channels if key != (source, target)
        )
        if not queue:
            return tuple(sorted(others))
        return tuple(sorted(others + (((source, target), queue),)))

    def _push(self, source: int, target: int, message: Message) -> "ModelState":
        queue = self.channel(source, target) + (message,)
        return replace(self, channels=self._with_channel(source, target, queue))

    # -- derived edge colours (paper section 2.2) ------------------------

    def edge_exists(self, source: int, target: int) -> bool:
        return target in self.waiting_for[source]

    def edge_color(self, source: int, target: int) -> str | None:
        if not self.edge_exists(source, target):
            return None
        if any(m == ("req", source) for m in self.channel(source, target)):
            return "grey"
        if source in self.holding_from[target]:
            return "black"
        return "white"

    def _on_cycle(self, vertex: int, colors: frozenset) -> bool:
        def successors(v: int) -> Iterable[int]:
            for target in self.waiting_for[v]:
                if self.edge_color(v, target) in colors:
                    yield target

        stack = list(successors(vertex))
        visited: set[int] = set()
        while stack:
            current = stack.pop()
            if current == vertex:
                return True
            if current in visited:
                continue
            visited.add(current)
            stack.extend(successors(current))
        return False

    def on_dark_cycle(self, vertex: int) -> bool:
        return self._on_cycle(vertex, frozenset({"grey", "black"}))

    def on_black_cycle(self, vertex: int) -> bool:
        return self._on_cycle(vertex, frozenset({"black"}))

    # -- probe engine helpers -------------------------------------------

    def _record(self, vertex: int, initiator: int) -> tuple[int, int, bool] | None:
        for record in self.records[vertex]:
            if record[0] == initiator:
                return record
        return None

    def _with_record(
        self, vertex: int, initiator: int, sequence: int, propagated: bool
    ) -> "ModelState":
        kept = tuple(r for r in self.records[vertex] if r[0] != initiator)
        new = tuple(sorted(kept + ((initiator, sequence, propagated),)))
        records = self.records[:vertex] + (new,) + self.records[vertex + 1 :]
        return replace(self, records=records)


def initial_state(n: int, script: Iterable[ScriptAction]) -> ModelState:
    return ModelState(
        n=n,
        channels=(),
        waiting_for=tuple(frozenset() for _ in range(n)),
        holding_from=tuple(frozenset() for _ in range(n)),
        records=tuple(() for _ in range(n)),
        next_sequence=tuple(1 for _ in range(n)),
        declared=frozenset(),
        obliged=frozenset(),
        script=tuple(script),
        script_pc=0,
    )


# ----------------------------------------------------------------------
# Enabled actions and transitions
# ----------------------------------------------------------------------


def enabled_actions(state: ModelState) -> list[Action]:
    """All actions enabled in ``state``: every non-empty channel delivery
    plus the next scripted action if its precondition holds."""
    actions: list[Action] = [
        Deliver(source=key[0], target=key[1])
        for key, queue in state.channels
        if queue
    ]
    if state.script_pc < len(state.script):
        action = state.script[state.script_pc]
        if _script_enabled(state, action):
            actions.append(action)
    return actions


def _script_enabled(state: ModelState, action: ScriptAction) -> bool:
    if isinstance(action, Request):
        return all(
            target != action.source and not state.edge_exists(action.source, target)
            for target in action.targets
        )
    if isinstance(action, Reply):
        # G3: only active vertices reply, and only to received requests.
        return (
            not state.waiting_for[action.source]
            and action.requester in state.holding_from[action.source]
        )
    if isinstance(action, Initiate):
        return True
    raise TypeError(f"unknown script action {action!r}")


def apply_action(state: ModelState, action: Action) -> ModelState:
    """The transition function.  Raises AssertionError on a QRP2 violation
    (declaration without a black cycle) -- the explorer surfaces these.
    """
    if isinstance(action, Deliver):
        return _deliver(state, action.source, action.target)
    state = replace(state, script_pc=state.script_pc + 1)
    if isinstance(action, Request):
        waiting = state.waiting_for[action.source] | frozenset(action.targets)
        waiting_for = (
            state.waiting_for[: action.source]
            + (waiting,)
            + state.waiting_for[action.source + 1 :]
        )
        state = replace(state, waiting_for=waiting_for)
        for target in sorted(action.targets):
            state = state._push(action.source, target, ("req", action.source))
        return state
    if isinstance(action, Reply):
        holding = state.holding_from[action.source] - {action.requester}
        holding_from = (
            state.holding_from[: action.source]
            + (holding,)
            + state.holding_from[action.source + 1 :]
        )
        state = replace(state, holding_from=holding_from)
        return state._push(action.source, action.requester, ("rep", action.source))
    if isinstance(action, Initiate):
        vertex = action.source
        sequence = state.next_sequence[vertex]
        next_sequence = (
            state.next_sequence[:vertex]
            + (sequence + 1,)
            + state.next_sequence[vertex + 1 :]
        )
        state = replace(state, next_sequence=next_sequence)
        state = state._with_record(vertex, vertex, sequence, True)
        if state.on_dark_cycle(vertex):
            # QRP1 antecedent: initiated while on a dark cycle.
            state = replace(state, obliged=state.obliged | {(vertex, sequence)})
        for target in sorted(state.waiting_for[vertex]):
            state = state._push(vertex, target, ("probe", vertex, sequence))
        return state
    raise TypeError(f"unknown action {action!r}")


def _deliver(state: ModelState, source: int, target: int) -> ModelState:
    queue = state.channel(source, target)
    if not queue:
        raise AssertionError(f"delivery on empty channel {(source, target)}")
    message, rest = queue[0], queue[1:]
    state = replace(state, channels=state._with_channel(source, target, rest))

    kind = message[0]
    if kind == "req":
        holding = state.holding_from[target] | {source}
        holding_from = (
            state.holding_from[:target] + (holding,) + state.holding_from[target + 1 :]
        )
        return replace(state, holding_from=holding_from)
    if kind == "rep":
        waiting = state.waiting_for[target] - {source}
        waiting_for = (
            state.waiting_for[:target] + (waiting,) + state.waiting_for[target + 1 :]
        )
        return replace(state, waiting_for=waiting_for)
    if kind == "probe":
        return _deliver_probe(state, source, target, message[1], message[2])
    raise AssertionError(f"unknown message {message!r}")


def _deliver_probe(
    state: ModelState, source: int, target: int, initiator: int, sequence: int
) -> ModelState:
    meaningful = source in state.holding_from[target]
    if not meaningful:
        return state
    record = state._record(target, initiator)
    if record is not None and sequence < record[1]:
        return state  # stale computation (section 4.3)
    if initiator == target:
        if record is not None and sequence == record[1]:
            if (target, sequence) not in state.declared:
                # A1 fires: QRP2 must hold in THIS state.
                if not state.on_black_cycle(target):
                    raise AssertionError(
                        f"QRP2 violated: vertex {target} declared (tag "
                        f"({initiator},{sequence})) without a black cycle"
                    )
                state = replace(
                    state, declared=state.declared | {(target, sequence)}
                )
        return state
    if record is None or sequence > record[1]:
        record = (initiator, sequence, False)
        state = state._with_record(target, initiator, sequence, False)
    if record[2]:
        return state  # already propagated for this computation
    state = state._with_record(target, initiator, sequence, True)
    for successor in sorted(state.waiting_for[target]):
        state = state._push(target, successor, ("probe", initiator, sequence))
    return state
