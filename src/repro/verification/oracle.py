"""Independent ground-truth computations.

The systems' embedded oracles answer "who is deadlocked" with our own DFS.
This module re-answers the question with networkx (when available) so that
tests can cross-validate the two implementations -- a cheap guard against
a systematic bug in the verification layer itself.
"""

from __future__ import annotations

from repro._algo import cyclic_sccs
from repro._ids import VertexId
from repro.basic.graph import EdgeColor, WaitForGraph


def independent_dark_cycle_vertices(graph: WaitForGraph) -> set[VertexId]:
    """Vertices on dark cycles, computed via SCCs (not the oracle's DFS).

    Uses networkx when importable, falling back to our Tarjan; either way
    the code path is disjoint from :meth:`WaitForGraph.is_on_dark_cycle`.
    """
    dark_edges = [
        (source, target)
        for (source, target), color in graph.edges()
        if color is not EdgeColor.WHITE
    ]
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - networkx is installed in CI
        adjacency: dict[VertexId, list[VertexId]] = {}
        for source, target in dark_edges:
            adjacency.setdefault(source, []).append(target)
        return set().union(*cyclic_sccs(adjacency)) if dark_edges else set()

    digraph = nx.DiGraph()
    digraph.add_edges_from(dark_edges)
    deadlocked: set[VertexId] = set()
    for component in nx.strongly_connected_components(digraph):
        if len(component) > 1:
            deadlocked |= component
    return deadlocked
