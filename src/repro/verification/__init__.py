"""Verification tooling: the machinery behind "our algorithm was proved
correct" (paper, section 7), checked mechanically.

Three independent layers:

1. **Oracle cross-checks** (:mod:`repro.verification.oracle`): the global
   coloured graphs already embedded in the systems, plus an independent
   networkx-based cycle finder to validate our DFS answers.
2. **Trace invariants** (:mod:`repro.verification.invariants`): post-hoc
   analyses of simulation traces -- per-channel FIFO order, and the P1/P2
   relationship (a probe found meaningful travelled an edge that existed
   and stayed dark for its entire flight).
3. **Exhaustive model checking** (:mod:`repro.verification.model` and
   :mod:`repro.verification.explorer`): a second, pure-functional
   implementation of the basic-model protocol whose *every* reachable
   interleaving is enumerated for small configurations, verifying QRP1
   and QRP2 over the full state space rather than sampled schedules.
"""

from repro.verification.explorer import ExplorationResult, explore
from repro.verification.invariants import (
    check_fifo,
    check_probe_edge_darkness,
)
from repro.verification.model import (
    Deliver,
    Initiate,
    ModelState,
    Reply,
    Request,
    initial_state,
)
from repro.verification.oracle import independent_dark_cycle_vertices

__all__ = [
    "Deliver",
    "ExplorationResult",
    "Initiate",
    "ModelState",
    "Reply",
    "Request",
    "check_fifo",
    "check_probe_edge_darkness",
    "explore",
    "independent_dark_cycle_vertices",
    "initial_state",
]
