"""A pure-functional specification of the OR/communication-model protocol.

The OR-model counterpart of :mod:`repro.verification.model`: immutable
states, a transition function, the same explorer.  It verifies the
communication-model detector of :mod:`repro.ormodel` over *all*
interleavings of small scripted scenarios:

* **soundness** in every reachable state: an initiator declares only when
  it is *truly* deadlocked -- its dependency closure is entirely blocked
  AND no grant is in flight toward any closure member (the channel-aware
  criterion; the state-only criterion is not stable while a grant
  travels);
* **completeness** in every terminal state: a computation initiated while
  truly deadlocked has declared.

State: per-vertex dependent sets (empty = active), queued communication
requests, per-initiator computation records (the latest per initiator),
and FIFO channels.  Messages: ``("reqany", src)``, ``("grant", src)``,
``("query", i, seq, sender)``, ``("reply", i, seq, sender)``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace

Message = tuple

#: engaging_sender value marking the computation's initiator record
_INITIATOR = -1


@dataclass(frozen=True)
class RequestAny:
    """Vertex ``source`` blocks on ANY of ``targets``."""

    source: int
    targets: tuple[int, ...]


@dataclass(frozen=True)
class GrantTo:
    """Active vertex ``source`` grants the queued request of ``requester``."""

    source: int
    requester: int


@dataclass(frozen=True)
class InitiateOr:
    """Blocked vertex ``source`` starts a query computation."""

    source: int


ScriptAction = RequestAny | GrantTo | InitiateOr


@dataclass(frozen=True)
class Deliver:
    source: int
    target: int


Action = ScriptAction | Deliver

Channels = tuple[tuple[tuple[int, int], tuple[Message, ...]], ...]

#: per-vertex computation record: (initiator, sequence, engaging_sender,
#: outstanding, replied); latest per initiator.
Record = tuple[int, int, int, int, bool]


@dataclass(frozen=True)
class OrModelState:
    n: int
    channels: Channels
    dependents: tuple[frozenset, ...]
    pending_grants: tuple[frozenset, ...]
    records: tuple[tuple[Record, ...], ...]
    next_sequence: tuple[int, ...]
    declared: frozenset
    obliged: frozenset
    script: tuple[ScriptAction, ...]
    script_pc: int

    # -- channels ---------------------------------------------------------

    def channel(self, source: int, target: int) -> tuple[Message, ...]:
        for key, queue in self.channels:
            if key == (source, target):
                return queue
        return ()

    def _with_channel(self, source: int, target: int, queue) -> Channels:
        others = tuple((k, q) for k, q in self.channels if k != (source, target))
        if not queue:
            return tuple(sorted(others))
        return tuple(sorted(others + (((source, target), queue),)))

    def _push(self, source: int, target: int, message: Message) -> "OrModelState":
        queue = self.channel(source, target) + (message,)
        return replace(self, channels=self._with_channel(source, target, queue))

    # -- ground truth -----------------------------------------------------

    def closure(self, vertex: int) -> frozenset:
        reached: set[int] = set()
        stack = [vertex]
        while stack:
            current = stack.pop()
            for nxt in self.dependents[current]:
                if nxt not in reached:
                    reached.add(nxt)
                    stack.append(nxt)
        return frozenset(reached)

    def truly_deadlocked(self, vertex: int) -> bool:
        """Channel-aware OR deadlock: blocked, closure entirely blocked,
        and no grant in flight toward the closure (or the vertex)."""
        if not self.dependents[vertex]:
            return False
        closure = self.closure(vertex)
        if any(not self.dependents[member] for member in closure):
            return False
        watch = set(closure) | {vertex}
        for (_, target), queue in self.channels:
            if target in watch and any(m[0] == "grant" for m in queue):
                return False
        return True

    # -- records ----------------------------------------------------------

    def _record(self, vertex: int, initiator: int) -> Record | None:
        for record in self.records[vertex]:
            if record[0] == initiator:
                return record
        return None

    def _with_record(self, vertex: int, record: Record) -> "OrModelState":
        kept = tuple(r for r in self.records[vertex] if r[0] != record[0])
        new = tuple(sorted(kept + (record,)))
        records = self.records[:vertex] + (new,) + self.records[vertex + 1 :]
        return replace(self, records=records)

    def _clear_records(self, vertex: int) -> "OrModelState":
        records = self.records[:vertex] + ((),) + self.records[vertex + 1 :]
        return replace(self, records=records)


def initial_state(n: int, script: Iterable[ScriptAction]) -> OrModelState:
    return OrModelState(
        n=n,
        channels=(),
        dependents=tuple(frozenset() for _ in range(n)),
        pending_grants=tuple(frozenset() for _ in range(n)),
        records=tuple(() for _ in range(n)),
        next_sequence=tuple(1 for _ in range(n)),
        declared=frozenset(),
        obliged=frozenset(),
        script=tuple(script),
        script_pc=0,
    )


# ----------------------------------------------------------------------
# Enabled actions
# ----------------------------------------------------------------------


def enabled_actions(state: OrModelState) -> list[Action]:
    actions: list[Action] = [
        Deliver(source=key[0], target=key[1])
        for key, queue in state.channels
        if queue
    ]
    if state.script_pc < len(state.script):
        action = state.script[state.script_pc]
        if _script_enabled(state, action):
            actions.append(action)
    return actions


def _script_enabled(state: OrModelState, action: ScriptAction) -> bool:
    if isinstance(action, RequestAny):
        return (
            not state.dependents[action.source]
            and action.source not in action.targets
        )
    if isinstance(action, GrantTo):
        # The G3-analogue: only active vertices grant, and only queued
        # requests.
        return (
            not state.dependents[action.source]
            and action.requester in state.pending_grants[action.source]
        )
    if isinstance(action, InitiateOr):
        return bool(state.dependents[action.source])
    raise TypeError(f"unknown script action {action!r}")


# ----------------------------------------------------------------------
# Transition function
# ----------------------------------------------------------------------


def apply_action(state: OrModelState, action: Action) -> OrModelState:
    if isinstance(action, Deliver):
        return _deliver(state, action.source, action.target)
    state = replace(state, script_pc=state.script_pc + 1)
    if isinstance(action, RequestAny):
        dependents = (
            state.dependents[: action.source]
            + (frozenset(action.targets),)
            + state.dependents[action.source + 1 :]
        )
        state = replace(state, dependents=dependents)
        for target in sorted(action.targets):
            state = state._push(action.source, target, ("reqany", action.source))
        return state
    if isinstance(action, GrantTo):
        pending = state.pending_grants[action.source] - {action.requester}
        pending_grants = (
            state.pending_grants[: action.source]
            + (pending,)
            + state.pending_grants[action.source + 1 :]
        )
        state = replace(state, pending_grants=pending_grants)
        return state._push(action.source, action.requester, ("grant", action.source))
    if isinstance(action, InitiateOr):
        vertex = action.source
        sequence = state.next_sequence[vertex]
        next_sequence = (
            state.next_sequence[:vertex]
            + (sequence + 1,)
            + state.next_sequence[vertex + 1 :]
        )
        state = replace(state, next_sequence=next_sequence)
        state = state._with_record(
            vertex,
            (vertex, sequence, _INITIATOR, len(state.dependents[vertex]), False),
        )
        if state.truly_deadlocked(vertex):
            state = replace(state, obliged=state.obliged | {(vertex, sequence)})
        for target in sorted(state.dependents[vertex]):
            state = state._push(vertex, target, ("query", vertex, sequence, vertex))
        return state
    raise TypeError(f"unknown action {action!r}")


def _deliver(state: OrModelState, source: int, target: int) -> OrModelState:
    queue = state.channel(source, target)
    if not queue:
        raise AssertionError(f"delivery on empty channel {(source, target)}")
    message, rest = queue[0], queue[1:]
    state = replace(state, channels=state._with_channel(source, target, rest))

    kind = message[0]
    if kind == "reqany":
        pending = state.pending_grants[target] | {source}
        pending_grants = (
            state.pending_grants[:target]
            + (pending,)
            + state.pending_grants[target + 1 :]
        )
        return replace(state, pending_grants=pending_grants)
    if kind == "grant":
        if source not in state.dependents[target]:
            return state  # stale grant
        dependents = (
            state.dependents[:target]
            + (frozenset(),)
            + state.dependents[target + 1 :]
        )
        state = replace(state, dependents=dependents)
        # Unblocking wipes detector state.
        return state._clear_records(target)
    if kind == "query":
        return _deliver_query(state, target, message[1], message[2], message[3])
    if kind == "reply":
        return _deliver_reply(state, target, message[1], message[2])
    raise AssertionError(f"unknown message {message!r}")


def _deliver_query(
    state: OrModelState, target: int, initiator: int, sequence: int, sender: int
) -> OrModelState:
    if not state.dependents[target]:
        return state  # active vertices discard detector traffic
    record = state._record(target, initiator)
    if record is not None and sequence < record[1]:
        return state
    if record is None or sequence > record[1]:
        state = state._with_record(
            target,
            (initiator, sequence, sender, len(state.dependents[target]), False),
        )
        for nxt in sorted(state.dependents[target]):
            state = state._push(target, nxt, ("query", initiator, sequence, target))
        return state
    # Non-engaging query of the current computation: echo a reply.
    return state._push(target, sender, ("reply", initiator, sequence, target))


def _deliver_reply(
    state: OrModelState, target: int, initiator: int, sequence: int
) -> OrModelState:
    if not state.dependents[target]:
        return state
    record = state._record(target, initiator)
    if record is None or record[1] != sequence or record[4]:
        return state
    outstanding = record[3] - 1
    if outstanding > 0:
        return state._with_record(
            target, (initiator, sequence, record[2], outstanding, False)
        )
    if record[2] == _INITIATOR:
        if (target, sequence) not in state.declared:
            if not state.truly_deadlocked(target):
                raise AssertionError(
                    f"OR soundness violated: vertex {target} declared "
                    f"(tag ({initiator},{sequence})) while not truly deadlocked"
                )
            state = replace(state, declared=state.declared | {(target, sequence)})
        return state._with_record(
            target, (initiator, sequence, _INITIATOR, 0, True)
        )
    state = state._with_record(
        target, (initiator, sequence, record[2], 0, True)
    )
    return state._push(target, record[2], ("reply", initiator, sequence, target))
