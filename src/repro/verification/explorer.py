"""Exhaustive interleaving exploration of the pure protocol model.

Breadth-first enumeration of every reachable state of a scripted
basic-model configuration, over all interleavings of message deliveries
and (enabled) script actions.  Soundness (QRP2) is asserted inside the
transition function on every declaration; completeness (QRP1) is checked
here at every terminal state.

State spaces stay small because scripts are small (a handful of requests
plus one or two initiations); the 3-cycle scenario explores a few thousand
states, well within test budgets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.verification import model as _basic_semantics


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    terminal_states: int
    #: (vertex, sequence) computations declared in at least one execution
    ever_declared: set[tuple[int, int]] = field(default_factory=set)
    #: QRP1 failures: terminal states where an obliged computation never
    #: declared (each entry is the missing (vertex, sequence) set)
    completeness_failures: list[frozenset] = field(default_factory=list)
    #: QRP2 failures propagated from the transition function
    soundness_failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.completeness_failures and not self.soundness_failures


def explore(
    n: int,
    script: list,
    max_states: int = 200_000,
    semantics=None,
) -> ExplorationResult:
    """Enumerate all reachable states of ``script`` over ``n`` vertices.

    ``semantics`` is a module exposing ``initial_state`` /
    ``enabled_actions`` / ``apply_action`` and whose states carry
    ``obliged`` / ``declared`` / ``next_sequence``; the basic-model
    specification (:mod:`repro.verification.model`) is the default and
    the OR-model specification (:mod:`repro.verification.or_model`) the
    other instance.  Raises :class:`ConfigurationError` if the state
    space exceeds ``max_states`` (enlarge the budget or shrink the
    scenario).
    """
    if semantics is None:
        semantics = _basic_semantics
    initial_state = semantics.initial_state
    enabled_actions = semantics.enabled_actions
    apply_action = semantics.apply_action

    start = initial_state(n, script)
    seen = {start}
    queue = deque([start])
    result = ExplorationResult(states_explored=0, terminal_states=0)

    while queue:
        state = queue.popleft()
        result.states_explored += 1
        if result.states_explored > max_states:
            raise ConfigurationError(
                f"state space exceeds {max_states} states; shrink the scenario"
            )
        actions = enabled_actions(state)
        if not actions:
            result.terminal_states += 1
            # QRP1 obligation applies to a vertex's *latest* computation:
            # section 4.3 explicitly allows superseded computations (i, k),
            # k < n, to be ignored once (i, n) is initiated.
            missing = frozenset(
                (vertex, sequence)
                for vertex, sequence in state.obliged - state.declared
                if sequence == state.next_sequence[vertex] - 1
            )
            if missing:
                result.completeness_failures.append(missing)
            result.ever_declared |= state.declared
            continue
        for action in actions:
            try:
                successor = apply_action(state, action)
            except AssertionError as violation:  # QRP2 breach
                result.soundness_failures.append(str(violation))
                continue
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
            result.ever_declared |= successor.declared
    return result
