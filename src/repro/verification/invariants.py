"""Trace-based invariant checkers.

Post-hoc analyses over a completed simulation's trace, validating that the
*environment* provided the guarantees the proofs assume:

* :func:`check_fifo` -- per-channel delivery order equals send order (the
  section 2.4 channel assumption).
* :func:`check_probe_edge_darkness` -- the P1 consequence the proof of
  Theorem 2 leans on: whenever a probe is received meaningfully along
  edge (j, k), that edge existed and was dark (grey or black) at every
  instant from the probe's send to its receipt.

Both return lists of violation descriptions; the test suite asserts they
are empty on every run, and the FIFO-ablation tests assert they are
*non-empty* when the network's FIFO guarantee is switched off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import categories
from repro.sim.trace import Tracer


def check_fifo(tracer: Tracer) -> list[str]:
    """Verify per-channel FIFO: delivery order matches send order.

    Matches ``net.sent`` / ``net.delivered`` events by message identity per
    (sender, destination) channel.
    """
    violations: list[str] = []
    sent: dict[tuple, list] = {}
    delivered_index: dict[tuple, int] = {}
    for event in tracer:
        if event.category == categories.NET_SENT:
            key = (event["sender"], event["destination"])
            sent.setdefault(key, []).append(event["message"])
        elif event.category == categories.NET_DELIVERED:
            key = (event["sender"], event["destination"])
            index = delivered_index.get(key, 0)
            queue = sent.get(key, [])
            if index >= len(queue):
                violations.append(f"delivery without send on channel {key}")
                continue
            if queue[index] != event["message"]:
                violations.append(
                    f"channel {key}: delivered {event['message']!r} at position "
                    f"{index}, expected {queue[index]!r} (reordering)"
                )
            delivered_index[key] = index + 1
    return violations


@dataclass
class _EdgeInterval:
    """One lifetime of an edge, reconstructed from the trace."""

    created: float
    blackened: float | None = None
    whitened: float | None = None
    deleted: float | None = None

    def dark_throughout(self, start: float, end: float) -> bool:
        """Edge existed and was grey/black during all of [start, end]."""
        if start < self.created:
            return False
        if self.whitened is not None and self.whitened < end:
            return False
        if self.deleted is not None and self.deleted < end:
            return False
        return True


def _edge_intervals(tracer: Tracer) -> dict[tuple, list[_EdgeInterval]]:
    """Reconstruct edge colour history from request/reply trace events."""
    intervals: dict[tuple, list[_EdgeInterval]] = {}
    for event in tracer:
        if event.category == categories.BASIC_REQUEST_SENT:
            key = (event["source"], event["target"])
            intervals.setdefault(key, []).append(_EdgeInterval(created=event.time))
        elif event.category == categories.BASIC_REQUEST_RECEIVED:
            key = (event["source"], event["target"])
            intervals[key][-1].blackened = event.time
        elif event.category == categories.BASIC_REPLY_SENT:
            # reply from target back to source whitens edge (source, target)
            key = (event["target"], event["source"])
            intervals[key][-1].whitened = event.time
        elif event.category == categories.BASIC_REPLY_RECEIVED:
            key = (event["target"], event["source"])
            intervals[key][-1].deleted = event.time
    return intervals


def check_probe_edge_darkness(tracer: Tracer) -> list[str]:
    """Verify the P1 consequence for every meaningfully received probe.

    For each ``basic.probe.received`` event with ``meaningful=True``, find
    the matching ``basic.probe.sent`` (FIFO matching per (tag, edge)) and
    check the edge was continuously dark over the probe's flight.
    """
    violations: list[str] = []
    intervals = _edge_intervals(tracer)
    sends: dict[tuple, list[float]] = {}
    consumed: dict[tuple, int] = {}
    for event in tracer:
        if event.category == categories.BASIC_PROBE_SENT:
            key = (event["tag"], event["source"], event["target"])
            sends.setdefault(key, []).append(event.time)
        elif event.category == categories.BASIC_PROBE_RECEIVED and event["meaningful"]:
            key = (event["tag"], event["source"], event["target"])
            index = consumed.get(key, 0)
            send_times = sends.get(key, [])
            if index >= len(send_times):
                violations.append(f"meaningful probe {key} received but never sent")
                continue
            consumed[key] = index + 1
            sent_at = send_times[index]
            edge = (event["source"], event["target"])
            history = intervals.get(edge, [])
            if not any(
                interval.dark_throughout(sent_at, event.time) for interval in history
            ):
                violations.append(
                    f"P1 violated: probe {event['tag']} on edge {edge} was "
                    f"meaningful at t={event.time} but the edge was not dark "
                    f"throughout [{sent_at}, {event.time}]"
                )
    return violations
