"""Tests for identifiers, the error hierarchy, and shared algorithms."""

from __future__ import annotations

import pytest

from repro._algo import cyclic_sccs
from repro._ids import ProbeTag, ProcessId, SiteId, TransactionId
from repro.errors import (
    AxiomViolation,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    TransactionAborted,
)


class TestProbeTag:
    def test_supersedes_same_initiator_only(self) -> None:
        assert ProbeTag(1, 3).supersedes(ProbeTag(1, 2))
        assert not ProbeTag(1, 2).supersedes(ProbeTag(1, 3))
        assert not ProbeTag(1, 3).supersedes(ProbeTag(2, 2))

    def test_ordering_and_str(self) -> None:
        assert ProbeTag(1, 2) < ProbeTag(1, 3) < ProbeTag(2, 1)
        assert str(ProbeTag(4, 7)) == "(4,7)"

    def test_hashable(self) -> None:
        assert len({ProbeTag(1, 1), ProbeTag(1, 1), ProbeTag(1, 2)}) == 2


class TestProcessId:
    def test_str(self) -> None:
        pid = ProcessId(transaction=TransactionId(3), site=SiteId(1))
        assert str(pid) == "(T3,S1)"

    def test_ordering(self) -> None:
        a = ProcessId(TransactionId(1), SiteId(2))
        b = ProcessId(TransactionId(2), SiteId(0))
        assert a < b


class TestErrors:
    def test_hierarchy(self) -> None:
        for error_type in (
            SimulationError,
            ConfigurationError,
            AxiomViolation,
            ProtocolError,
            TransactionAborted,
        ):
            assert issubclass(error_type, ReproError)

    def test_axiom_violation_carries_axiom(self) -> None:
        error = AxiomViolation("G3", "whatever")
        assert error.axiom == "G3"
        assert "G3" in str(error)

    def test_transaction_aborted_fields(self) -> None:
        error = TransactionAborted(7, "victim")
        assert error.transaction == 7
        assert "T7" in str(error)


class TestCyclicSccs:
    def test_simple_cycle(self) -> None:
        assert cyclic_sccs({0: [1], 1: [0]}) == [{0, 1}]

    def test_acyclic(self) -> None:
        assert cyclic_sccs({0: [1], 1: [2], 2: []}) == []

    def test_two_components(self) -> None:
        components = cyclic_sccs({0: [1], 1: [0], 2: [3], 3: [4], 4: [2], 5: [0]})
        assert {frozenset(c) for c in components} == {
            frozenset({0, 1}),
            frozenset({2, 3, 4}),
        }

    def test_long_chain_no_recursion_error(self) -> None:
        n = 5000
        adjacency = {i: [i + 1] for i in range(n)}
        adjacency[n] = [0]
        components = cyclic_sccs(adjacency)
        assert len(components) == 1
        assert len(components[0]) == n + 1

    def test_nested_cycles_merge_into_one_scc(self) -> None:
        adjacency = {0: [1], 1: [2, 0], 2: [0]}
        assert cyclic_sccs(adjacency) == [{0, 1, 2}]

    def test_networkx_agreement_on_random_graphs(self) -> None:
        import random

        import networkx as nx

        rng = random.Random(0)
        for _ in range(25):
            n = rng.randint(2, 12)
            edges = {
                (rng.randrange(n), rng.randrange(n)) for _ in range(rng.randint(0, 25))
            }
            adjacency: dict[int, list[int]] = {}
            digraph = nx.DiGraph()
            for a, b in edges:
                if a == b:
                    continue
                adjacency.setdefault(a, []).append(b)
                digraph.add_edge(a, b)
            ours = {frozenset(c) for c in cyclic_sccs(adjacency)}
            theirs = {
                frozenset(c)
                for c in nx.strongly_connected_components(digraph)
                if len(c) > 1
            }
            assert ours == theirs
