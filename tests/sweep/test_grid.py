"""Cells and grids are pure, picklable, uniquely-identified values."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.sweep import GRIDS, build_grid
from repro.sweep.grid import (
    SweepCell,
    delay_model_from_spec,
    make_params,
)


class TestCellIdentity:
    def test_cell_id_encodes_every_axis(self) -> None:
        cell = SweepCell(
            "e5",
            "random",
            n=10,
            seed=3,
            delay="exp:1.0",
            timeout_t=2.0,
            duration=60.0,
            params=make_params(max_targets=2, mean_think=2.0, service_delay=0.5),
        )
        assert cell.cell_id == (
            "e5/random/n=10/seed=3/delay=exp:1.0/T=2/dur=60"
            "/max_targets=2/mean_think=2/service_delay=0.5"
        )

    def test_immediate_initiation_is_named_not_numeric(self) -> None:
        cell = SweepCell("e5", "random", n=10, seed=0, timeout_t=None)
        assert "/T=immediate" in cell.cell_id
        zero = SweepCell("e5", "random", n=10, seed=0, timeout_t=0.0)
        assert "/T=0" in zero.cell_id
        assert cell.cell_id != zero.cell_id

    def test_cells_are_hashable_and_picklable(self) -> None:
        cell = SweepCell("e1", "cycle", n=8, seed=1, params=make_params(rounds=3))
        assert pickle.loads(pickle.dumps(cell)) == cell
        assert len({cell, cell}) == 1

    def test_params_are_order_canonical(self) -> None:
        a = make_params(b=2.0, a=1.0)
        b = make_params(a=1.0, b=2.0)
        assert a == b == (("a", 1.0), ("b", 2.0))

    def test_param_lookup(self) -> None:
        cell = SweepCell("e3", "dense", n=16, seed=0, params=make_params(fan_out=3))
        assert cell.param("fan_out") == 3
        assert cell.param("absent", 7.0) == 7.0
        with pytest.raises(ConfigurationError):
            cell.param("absent")


class TestDelaySpecs:
    def test_known_specs_materialise(self) -> None:
        from repro.sim.network import ExponentialDelay, FixedDelay, UniformDelay

        assert delay_model_from_spec("none") is None
        assert isinstance(delay_model_from_spec("exp:1.5"), ExponentialDelay)
        assert isinstance(delay_model_from_spec("fixed:2.0"), FixedDelay)
        uniform = delay_model_from_spec("uniform:0.1:3.0")
        assert isinstance(uniform, UniformDelay)
        assert (uniform.low, uniform.high) == (0.1, 3.0)

    @pytest.mark.parametrize("spec", ["gauss:1.0", "exp:", "uniform:1.0", "exp:abc"])
    def test_malformed_specs_raise(self, spec: str) -> None:
        with pytest.raises(ConfigurationError):
            delay_model_from_spec(spec)


class TestShippedGrids:
    def test_one_grid_per_experiment(self) -> None:
        assert GRIDS == (
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
        )

    @pytest.mark.parametrize("name", GRIDS)
    def test_grid_builds_nonempty_with_unique_cell_ids(self, name: str) -> None:
        for quick in (True, False):
            grid = build_grid(name, quick=quick)
            assert len(grid) > 0
            ids = [cell.cell_id for cell in grid.cells]
            assert len(set(ids)) == len(ids)
            assert all(cell.grid == name for cell in grid.cells)

    @pytest.mark.parametrize("name", GRIDS)
    def test_quick_grid_is_a_strict_subset_axis_count(self, name: str) -> None:
        assert len(build_grid(name, quick=True)) < len(build_grid(name, quick=False))

    def test_unknown_grid_raises(self) -> None:
        with pytest.raises(ConfigurationError):
            build_grid("e99")

    def test_e5_grid_covers_the_paper_t_sweep(self) -> None:
        from repro.experiments.e5_t_tradeoff import SEEDS, T_SWEEP

        grid = build_grid("e5")
        assert len(grid) == len(T_SWEEP) * len(SEEDS)
        timeouts = {cell.timeout_t for cell in grid.cells}
        assert timeouts == set(T_SWEEP)
