"""The sweep engine's determinism contract.

The merged document must be a pure function of the grid: same cells in,
same bytes out, regardless of worker count, scheduling order, or which
cells error.  These tests exercise the real multiprocessing path (small
grids, so the pool overhead stays in tens of milliseconds).
"""

from __future__ import annotations

import pytest

from repro.sweep import build_grid, canonical_json, merge_results, run_cell, run_sweep
from repro.sweep.grid import SweepCell, make_params


def merged_bytes(cells, workers: int) -> bytes:
    results = run_sweep(cells, workers=workers)
    return canonical_json(merge_results("test", results)).encode("utf-8")


class TestWorkerCountIndependence:
    def test_e3_quick_workers_1_vs_4_byte_identical(self) -> None:
        grid = build_grid("e3", quick=True)
        assert merged_bytes(grid.cells, 1) == merged_bytes(grid.cells, 4)

    def test_e1_quick_workers_1_vs_2_byte_identical(self) -> None:
        grid = build_grid("e1", quick=True)
        assert merged_bytes(grid.cells, 1) == merged_bytes(grid.cells, 2)

    def test_repeated_runs_are_stable(self) -> None:
        grid = build_grid("e6", quick=True)
        assert merged_bytes(grid.cells, 1) == merged_bytes(grid.cells, 1)

    def test_cell_order_in_grid_is_irrelevant(self) -> None:
        grid = build_grid("e3", quick=True)
        reversed_cells = tuple(reversed(grid.cells))
        assert merged_bytes(grid.cells, 1) == merged_bytes(reversed_cells, 1)


class TestErrorCells:
    def broken_cell(self) -> SweepCell:
        # n=0 fails BasicSystem's n_vertices >= 1 validation inside the worker.
        return SweepCell("test", "cycle", n=0, seed=0)

    def test_crashing_cell_becomes_error_status(self) -> None:
        result = run_cell(self.broken_cell())
        assert result["status"] == "error"
        assert "ConfigurationError" in result["error"]

    def test_unknown_scenario_becomes_error_status(self) -> None:
        result = run_cell(SweepCell("test", "no-such-scenario", n=3, seed=0))
        assert result["status"] == "error"
        assert "no-such-scenario" in result["error"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_cell_does_not_abort_the_sweep(self, workers: int) -> None:
        good = SweepCell("test", "cycle", n=3, seed=0)
        cells = (good, self.broken_cell(), good.with_seed(1))
        results = run_sweep(cells, workers=workers)
        assert len(results) == 3
        by_status = sorted(result["status"] for result in results)
        assert by_status == ["error", "ok", "ok"]

    def test_error_cells_merge_deterministically(self) -> None:
        cells = (SweepCell("test", "cycle", n=3, seed=0), self.broken_cell())
        assert merged_bytes(cells, 1) == merged_bytes(cells, 2)
        merged = merge_results("test", run_sweep(cells, workers=1))
        assert merged["summary"] == {
            "cells": 2,
            "ok": 1,
            "errors": 1,
            "deadlocks": 1,
            "events": merged["summary"]["events"],
            "probes": merged["summary"]["probes"],
            "unsound": 0,
        }

    def test_workers_must_be_positive(self) -> None:
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_sweep((), workers=0)


class TestResultShape:
    def test_ok_cell_carries_the_deterministic_fields(self) -> None:
        result = run_cell(SweepCell("test", "cycle", n=4, seed=0, delay="exp:1.0"))
        assert result["status"] == "ok"
        assert result["outcome"] == "deadlock"
        assert result["events"] > 0
        assert result["probes"] > 0
        assert result["unsound"] == 0
        assert result["wall_seconds"] > 0

    def test_wall_seconds_never_reaches_the_merged_document(self) -> None:
        cells = (SweepCell("test", "cycle", n=3, seed=0),)
        merged = merge_results("test", run_sweep(cells, workers=1))
        assert all("wall_seconds" not in cell for cell in merged["cells"])

    def test_timing_sidecar_carries_wall_clock(self) -> None:
        from repro.sweep.merge import timing_sidecar

        cells = (SweepCell("test", "cycle", n=3, seed=0),)
        results = run_sweep(cells, workers=1)
        sidecar = timing_sidecar("test", results)
        (cell_timing,) = sidecar["cells"].values()
        assert cell_timing["wall_seconds"] > 0
        assert cell_timing["events_per_sec"] > 0
        assert sidecar["total"]["events"] == results[0]["events"]


def test_with_seed_helper() -> None:
    cell = SweepCell("test", "cycle", n=3, seed=0, params=make_params(rounds=2))
    replaced = cell.with_seed(7)
    assert replaced.seed == 7
    assert replaced.params == cell.params
    assert cell.seed == 0
