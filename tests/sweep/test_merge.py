"""Canonical merging and the baseline record/check round trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sweep import baseline, canonical_json, merge_results


def fake_results() -> list[dict]:
    return [
        {
            "cell_id": "g/b",
            "status": "ok",
            "outcome": "deadlock",
            "events": 10,
            "probes": 4,
            "unsound": 0,
            "wall_seconds": 0.5,
        },
        {
            "cell_id": "g/a",
            "status": "error",
            "error": "Boom: nope",
            "wall_seconds": 0.1,
        },
    ]


class TestMerge:
    def test_cells_sorted_and_wall_clock_stripped(self) -> None:
        merged = merge_results("g", fake_results())
        assert [cell["cell_id"] for cell in merged["cells"]] == ["g/a", "g/b"]
        assert all("wall_seconds" not in cell for cell in merged["cells"])
        assert merged["schema"] == "repro.sweep/1"
        assert merged["summary"]["errors"] == 1
        assert merged["summary"]["deadlocks"] == 1

    def test_canonical_json_is_sorted_and_newline_terminated(self) -> None:
        text = canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"b": 1, "a": {"d": 2, "c": 3}}

    def test_merge_is_input_order_independent(self) -> None:
        forward = canonical_json(merge_results("g", fake_results()))
        backward = canonical_json(merge_results("g", fake_results()[::-1]))
        assert forward == backward


@pytest.fixture
def fast_bench(monkeypatch: pytest.MonkeyPatch):
    """Replace the real micro-benchmarks/shapes with instant fakes."""
    speed = {"value": 1000.0}
    monkeypatch.setattr(
        baseline, "MICRO_BENCHMARKS", {"fake.engine": lambda: (100, 100 / speed["value"])}
    )
    monkeypatch.setattr(
        baseline, "measure_shapes", lambda grids=("g1",): dict.fromkeys(grids, "abc123")
    )
    return speed


class TestBaselineRoundTrip:
    def test_record_then_check_passes(self, tmp_path: Path, fast_bench) -> None:
        path = tmp_path / "BENCH_baseline.json"
        document = baseline.record(path, repeats=1)
        assert document["throughput"] == {"fake.engine": 1000.0}
        lines = baseline.check(path, threshold=0.25, repeats=1)
        assert any("fake.engine" in line and "ok" in line for line in lines)

    def test_throughput_regression_fails(self, tmp_path: Path, fast_bench) -> None:
        path = tmp_path / "BENCH_baseline.json"
        baseline.record(path, repeats=1)
        fast_bench["value"] = 500.0  # 2x slower than recorded: beyond 25%
        with pytest.raises(baseline.BenchRegression, match="regressed"):
            baseline.check(path, threshold=0.25, repeats=1)

    def test_small_slowdown_within_threshold_passes(
        self, tmp_path: Path, fast_bench
    ) -> None:
        path = tmp_path / "BENCH_baseline.json"
        baseline.record(path, repeats=1)
        fast_bench["value"] = 900.0  # 10% slower: inside the 25% band
        baseline.check(path, threshold=0.25, repeats=1)

    def test_shape_change_fails_with_reset_hint(
        self, tmp_path: Path, fast_bench, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        path = tmp_path / "BENCH_baseline.json"
        baseline.record(path, repeats=1)
        monkeypatch.setattr(
            baseline, "measure_shapes", lambda grids=("g1",): dict.fromkeys(grids, "zzz")
        )
        with pytest.raises(baseline.BenchRegression, match=r"\[bench-reset\]"):
            baseline.check(path, repeats=1)

    def test_unrecognised_schema_fails(self, tmp_path: Path) -> None:
        path = tmp_path / "BENCH_baseline.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(baseline.BenchRegression, match="schema"):
            baseline.check(path)

    def test_real_shape_hash_is_stable(self) -> None:
        assert baseline.shape_hash("e3") == baseline.shape_hash("e3")


class TestCommittedBaseline:
    """The baseline file shipped in-repo stays coherent with the code."""

    def path(self) -> Path:
        return Path(__file__).parents[2] / "benchmarks" / "BENCH_baseline.json"

    def test_committed_baseline_parses_and_covers_everything(self) -> None:
        document = json.loads(self.path().read_text())
        assert document["schema"] == baseline.SCHEMA
        assert set(document["throughput"]) == set(baseline.MICRO_BENCHMARKS)
        from repro.sweep import GRIDS

        assert set(document["shapes"]) == set(GRIDS)

    def test_committed_shapes_match_current_behaviour(self) -> None:
        # The strongest regression guard in the suite: any change to the
        # engine, the experiments, or the sweep serialisation that shifts
        # observable results must re-record BENCH_baseline.json (or push
        # with [bench-reset] in CI).
        document = json.loads(self.path().read_text())
        assert document["shapes"]["e3"] == baseline.shape_hash("e3")
        assert document["shapes"]["e6"] == baseline.shape_hash("e6")
