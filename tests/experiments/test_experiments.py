"""Smoke + shape tests for the experiment harness (quick mode).

The benchmarks assert the full shape claims; these tests keep the
experiment code importable, runnable, and structurally sane under plain
``pytest tests/``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.experiments import ALL_EXPERIMENTS


class TestRegistry:
    def test_all_ten_registered(self) -> None:
        assert sorted(ALL_EXPERIMENTS) == sorted(f"E{i}" for i in range(1, 11))

    def test_every_module_has_run(self) -> None:
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_quick_run_produces_table_and_results(name: str) -> None:
    table, results = ALL_EXPERIMENTS[name].run(quick=True)
    assert isinstance(table, Table)
    assert table.rows
    assert results
    assert name.lower() in table.title.lower()


class TestShapeHighlights:
    """A few load-bearing shape assertions duplicated from the benches so
    plain ``pytest tests/`` exercises them too."""

    def test_e1_nothing_missed(self) -> None:
        _, results = ALL_EXPERIMENTS["E1"].run(quick=True)
        assert all(result.missed == 0 for result in results)

    def test_e2_nothing_unsound(self) -> None:
        _, results = ALL_EXPERIMENTS["E2"].run(quick=True)
        assert all(result.unsound == 0 for result in results)

    def test_e3_within_bounds(self) -> None:
        _, results = ALL_EXPERIMENTS["E3"].run(quick=True)
        assert all(result.within_bound for result in results)

    def test_e7_optimised_cheaper(self) -> None:
        _, results = ALL_EXPERIMENTS["E7"].run(quick=True)
        naive = {r.label: r.computations for r in results if r.mode == "naive"}
        optimised = {
            r.label: r.computations for r in results if r.mode == "6.7 optimised"
        }
        for label in naive:
            assert optimised[label] < naive[label]

    def test_e10_adaptive_on_the_frontier(self) -> None:
        _, results = ALL_EXPERIMENTS["E10"].run(quick=True)
        adaptive = next(r for r in results if r.is_adaptive)
        statics = [r for r in results if not r.is_adaptive]
        assert any(adaptive.dominates(static) for static in statics)
        assert all(r.bound_violations == 0 for r in results)
