"""Ablation: inter-controller edge serials under abort/restart.

The paper's probes carry "the identity of the edge"; in the abort-free
model the pair (origin, target) identifies an edge uniquely over time,
because G3-DDB forbids re-creating an edge before it disappears *and*
nothing short of the reply path removes it.  Our resolution extension
introduces aborts, after which a restarted transaction can legitimately
re-create "the same" (origin, target) edge.  A probe sent against the old
incarnation must not be judged meaningful against the new one -- exactly
the basic-model P1 breach of test_fifo_requirement, transplanted to the
DDB.  Edge *serials* (incremented per incarnation) close the hole.

These tests pin the mechanism: the serialised meaningfulness check rejects
a stale probe that an identity-only check would accept, and a restart
storm under full resolution never produces an unsound declaration.
"""

from __future__ import annotations

from repro._ids import ProcessId, SiteId, TransactionId
from repro.ddb.messages import EdgeRef
from repro.ddb.resolution import AbortAboutTransaction
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import TransactionExecution

from tests.ddb.helpers import X, cross_deadlock, spec, two_site_system
from repro.ddb.transaction import Think, acquire


def pid(tid: int, site: int) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


class TestSerialMechanism:
    def _blocked_agent_system(self) -> DdbSystem:
        """T2's agent at S1 waits for r1 held by T1: the inter edge
        ((T2,S0),(T2,S1)) is black with a concrete serial."""
        system = two_site_system()
        system.begin(spec(1, 1, acquire(("r1", X)), Think(30.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r1", X))), at=1.0)
        system.run(until=5.0)
        return system

    def test_probe_with_matching_serial_is_meaningful(self) -> None:
        system = self._blocked_agent_system()
        controller = system.controller(1)
        agent = controller.agents[TransactionId(2)]
        assert agent.inbound is not None
        edge = EdgeRef(
            origin=pid(2, 0), target=pid(2, 1), serial=agent.inbound.serial
        )
        assert controller.inter_edge_black(edge)

    def test_stale_serial_rejected_where_identity_only_would_accept(self) -> None:
        system = self._blocked_agent_system()
        controller = system.controller(1)
        agent = controller.agents[TransactionId(2)]
        stale = EdgeRef(
            origin=pid(2, 0), target=pid(2, 1), serial=agent.inbound.serial + 1000
        )
        # Serialised check: stale probe is not meaningful.
        assert not controller.inter_edge_black(stale)
        # Counterfactual identity-only check (what a serial-less
        # implementation would compute): it WOULD accept the stale probe.
        identity_only = (
            agent.inbound is not None
            and agent.inbound.origin == stale.origin
            and agent.pid == stale.target
        )
        assert identity_only

    def test_restart_reissues_edge_with_fresh_serial(self) -> None:
        system = two_site_system(resolution=AbortAboutTransaction())
        serials: list[int] = []

        def restart(execution: TransactionExecution, aborted: bool) -> None:
            if aborted:
                system.restart(
                    execution.spec.tid, delay=3.0 + 4.0 * int(execution.spec.tid)
                )

        system.finished_callback = restart
        cross_deadlock(system)

        def collect(event) -> None:
            if event.category == "ddb.probe.sent":
                serials.append(event["edge"].serial)

        system.simulator.tracer.subscribe(collect)
        system.run_to_quiescence(max_events=200_000)
        # Across incarnations, distinct serials appeared for probes of the
        # same transactions (fresh incarnations got fresh edge identities).
        assert len(set(serials)) >= 2


class TestRestartStormStaysSound:
    def test_many_restarts_no_unsound_declaration(self) -> None:
        # Opposing transaction pairs deadlock repeatedly; stale probes and
        # grants criss-cross restarts.  Serials keep every declaration
        # sound (or classified stale-after-abort); never phantom.
        system = two_site_system(resolution=AbortAboutTransaction(), seed=11)
        backoff = system.simulator.rng.stream("test.backoff")

        def restart(execution: TransactionExecution, aborted: bool) -> None:
            if aborted and system.now < 300.0:
                system.restart(execution.spec.tid, delay=0.5 + 8.0 * backoff.random())

        system.finished_callback = restart
        for i in range(8):
            first, second = ("r0", "r1") if i % 2 == 0 else ("r1", "r0")
            system.begin(
                spec(i + 1, i % 2, acquire((first, X)), Think(0.5), acquire((second, X))),
                at=0.25 * i,
            )
        system.run_to_quiescence(max_events=500_000)
        assert system.soundness_violations == []
        assert all(record.commits == 1 for record in system.transactions.values())
