"""Ablation: the OR-model detector also leans on FIFO channels.

The communication-model algorithm's soundness argument has the same shape
as P1/P2: a dependent's *reply* travels on the same channel as any *grant*
it previously sent, so under FIFO the grant lands first, the receiver
unblocks, wipes its computation state, and the stale reply is discarded.
Remove the ordering and a reply can overtake an in-flight grant, letting
an initiator that is about to unblock collect a full set of replies and
declare a deadlock that does not exist.

Scripted scenario (manual grants/initiations):

====  =====================================================
t=0    g requests any{a}
t=2    a (active) grants g -- the Grant is given a HUGE delay
t=3    a requests any{x};  t=4: x requests any{a}
       (a and x now form a genuine OR deadlock between themselves)
t=6    g initiates: query g->a; a engages, forwards to x; x engages,
       forwards to a (non-engaging, echoed); replies collapse back;
       a's reply to g OVERTAKES the slow grant (non-FIFO)
  =>   g collects all replies and declares -- while its grant is in
       flight: a phantom.  With FIFO, the grant is delivered first,
       g unblocks, and the late reply is discarded.
====  =====================================================
"""

from __future__ import annotations

from repro._ids import VertexId
from repro.ormodel.messages import Grant
from repro.ormodel.system import OrSystem


def v(i: int) -> VertexId:
    return VertexId(i)


G, A, X = 0, 1, 2


def build(fifo: bool) -> OrSystem:
    system = OrSystem(
        n_vertices=3,
        fifo=fifo,
        auto_grant=False,
        auto_initiate=False,
        strict=False,
    )

    def override(sender, destination, message):
        if isinstance(message, Grant):
            return 50.0
        return 1.0

    system.network.delay_override = override
    sim = system.simulator
    sim.schedule_at(0.0, lambda: system.vertex(G).request_any([v(A)]))
    sim.schedule_at(2.0, lambda: system.vertex(A).grant_to(v(G)))
    sim.schedule_at(3.0, lambda: system.vertex(A).request_any([v(X)]))
    sim.schedule_at(4.0, lambda: system.vertex(X).request_any([v(A)]))
    sim.schedule_at(6.0, lambda: system.vertex(G).initiate_detection())
    return system


class TestOrSoundnessNeedsFifo:
    def test_without_fifo_phantom_declared(self) -> None:
        system = build(fifo=False)
        system.run_to_quiescence()
        phantom = [d for d in system.declarations if d.vertex == v(G)]
        assert phantom
        assert not phantom[0].deadlocked
        assert system.soundness_violations
        # And indeed g ends the run ACTIVE -- its "deadlock" dissolved.
        assert system.vertex(G).active

    def test_with_fifo_same_delays_stay_sound(self) -> None:
        system = build(fifo=True)
        system.run_to_quiescence()
        assert [d for d in system.declarations if d.vertex == v(G)] == []
        assert system.soundness_violations == []
        assert system.vertex(G).active

    def test_real_deadlock_between_a_and_x_is_detectable_either_way(self) -> None:
        # The genuine deadlock in the scenario (a <-> x) is detectable by
        # a's own computation regardless of the g-side races.
        for fifo in (False, True):
            system = build(fifo=fifo)
            system.simulator.schedule_at(
                8.0, lambda system=system: system.vertex(A).initiate_detection()
            )
            system.run_to_quiescence()
            a_declarations = [d for d in system.declarations if d.vertex == v(A)]
            assert a_declarations
            assert a_declarations[0].deadlocked
