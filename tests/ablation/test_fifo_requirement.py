"""Ablation: the algorithm's correctness genuinely requires FIFO channels.

The paper assumes only that "messages are received correctly and in
order" (abstract), and process axioms P1/P2 are consequences of that
ordering.  These tests switch the network's FIFO guarantee off and script
exact message orderings (via ``Network.delay_override``) to show both
theorems break:

* **Completeness breaks:** a probe racing ahead of the request that
  created its edge arrives non-meaningful and dies; a freshly closed dark
  cycle then goes undetected forever.
* **Soundness breaks:** a probe stalled across an edge's whole
  reply/re-request lifecycle lands on the *new* incarnation of "the same"
  edge and is wrongly judged meaningful; the probe chain completes a
  cycle that never existed and the initiator declares a phantom deadlock.

Each scenario is then re-run with FIFO restored (same nominal delays --
the clamp re-orders delivery), and the theorems hold again.  The trace
invariant checker flags exactly the P1 breach in the broken runs.
"""

from __future__ import annotations

from repro._ids import VertexId
from repro.basic.initiation import ManualInitiation
from repro.basic.messages import Probe
from repro.basic.system import BasicSystem
from repro.verification.invariants import check_fifo, check_probe_edge_darkness
from repro.workloads.scenarios import schedule_cycle


def v(i: int) -> VertexId:
    return VertexId(i)


def fast_probes(sender, destination, message):
    """Probes fly at 0.1; everything else takes 1.0."""
    return 0.1 if isinstance(message, Probe) else 1.0


class TestCompletenessNeedsFifo:
    def _run(self, fifo: bool) -> BasicSystem:
        system = BasicSystem(n_vertices=3, fifo=fifo)
        system.network.delay_override = fast_probes
        schedule_cycle(system, [0, 1, 2])
        system.run_to_quiescence()
        return system

    def test_without_fifo_deadlock_goes_undetected(self) -> None:
        # Every probe overtakes the request that created its edge, arrives
        # non-meaningful, and is dropped: the dark cycle survives silently.
        system = self._run(fifo=False)
        assert system.oracle.vertices_on_dark_cycles() == {v(0), v(1), v(2)}
        assert system.declarations == []
        assert not system.completeness_report().complete

    def test_with_fifo_same_delays_detect(self) -> None:
        # Identical nominal delays; the FIFO clamp restores P1 and with it
        # Theorem 1.
        system = self._run(fifo=True)
        assert system.declarations
        system.assert_completeness()

    def test_fifo_checker_flags_reordering(self) -> None:
        system = self._run(fifo=False)
        assert check_fifo(system.simulator.tracer)
        system = self._run(fifo=True)
        assert check_fifo(system.simulator.tracer) == []


class TestSoundnessNeedsFifo:
    """Scripted phantom: a stalled probe bridges two edge incarnations.

    Timeline (all service manual, detection manual):

    ==== =====================================================
    t=0   A requests B;           B requests C
    t=2   A initiates (A,1): probe -> B (arrives t=3, meaningful,
          B waits on C, forwards probe -> C ... STALLED until t=43)
    t=4   C replies to B (C is active: G3 ok)
    t=6   B replies to A (B is active: G3 ok)
    t=8   A requests D            (A blocked again, on D only)
    t=9   C requests A            (C -> A black at t=10)
    t=11  B requests C AGAIN      (B -> C incarnation 2, black t=12)
    t=43  stalled probe reaches C: B is in C's pending_in -- the probe is
          judged meaningful against the WRONG incarnation (P1 broke);
          C forwards to A along C -> A
    t=44  A receives a meaningful probe of its own computation and
          declares -- but the edges now are A->D, C->A, B->C: NO cycle.
    ==== =====================================================
    """

    A, B, C, D = 0, 1, 2, 3

    def _build(self, fifo: bool) -> BasicSystem:
        system = BasicSystem(
            n_vertices=4,
            fifo=fifo,
            auto_reply=False,
            initiation=ManualInitiation(),
            strict=False,
        )
        A, B, C, D = self.A, self.B, self.C, self.D

        def override(sender, destination, message):
            if isinstance(message, Probe) and sender == v(B) and destination == v(C):
                return 40.0  # the stalled hop
            return 1.0

        system.network.delay_override = override
        sim = system.simulator
        sim.schedule_at(0.0, lambda: system.vertex(A).request([v(B)]))
        sim.schedule_at(0.0, lambda: system.vertex(B).request([v(C)]))
        sim.schedule_at(2.0, system.vertex(A).initiate_probe_computation)
        sim.schedule_at(4.0, lambda: system.vertex(C).reply_to(v(B)))
        sim.schedule_at(6.0, lambda: system.vertex(B).reply_to(v(A)))
        sim.schedule_at(8.0, lambda: system.vertex(A).request([v(D)]))
        sim.schedule_at(9.0, lambda: system.vertex(C).request([v(A)]))
        sim.schedule_at(11.0, lambda: system.vertex(B).request([v(C)]))
        return system

    def test_without_fifo_phantom_deadlock_declared(self) -> None:
        system = self._build(fifo=False)
        system.run_to_quiescence()
        assert len(system.declarations) == 1
        declaration = system.declarations[0]
        assert declaration.vertex == v(self.A)
        assert not declaration.on_black_cycle  # a phantom!
        assert system.soundness_violations == [declaration]
        # No vertex was ever on a dark cycle in this history.
        assert system.oracle.vertices_on_dark_cycles() == set()

    def test_invariant_checker_pinpoints_p1_breach(self) -> None:
        system = self._build(fifo=False)
        system.run_to_quiescence()
        violations = check_probe_edge_darkness(system.simulator.tracer)
        assert violations
        assert any("P1 violated" in violation for violation in violations)

    def test_with_fifo_same_script_stays_sound(self) -> None:
        # FIFO forces the stalled probe to be delivered before the second
        # B -> C request (same channel), where it is non-meaningful.
        system = self._build(fifo=True)
        system.run_to_quiescence()
        assert system.declarations == []
        assert system.soundness_violations == []
        assert check_probe_edge_darkness(system.simulator.tracer) == []
