"""Tests for the canned basic-model scenarios."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.workloads.scenarios import (
    schedule_chain,
    schedule_cycle,
    schedule_cycle_with_tails,
    schedule_figure_eight,
    schedule_near_cycle,
    schedule_ping_pong,
)


def v(i: int) -> VertexId:
    return VertexId(i)


class TestCycle:
    def test_cycle_forms_and_deadlocks(self) -> None:
        system = BasicSystem(n_vertices=4)
        schedule_cycle(system, [0, 1, 2, 3])
        system.run_to_quiescence()
        assert system.oracle.vertices_on_dark_cycles() == {v(0), v(1), v(2), v(3)}

    def test_cycle_over_subset_of_vertices(self) -> None:
        system = BasicSystem(n_vertices=6)
        schedule_cycle(system, [1, 3, 5])
        system.run_to_quiescence()
        assert system.oracle.vertices_on_dark_cycles() == {v(1), v(3), v(5)}
        assert system.vertex(0).active

    def test_too_small_cycle_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            schedule_cycle(BasicSystem(n_vertices=2), [0])


class TestChainAndNearCycle:
    def test_chain_drains_completely(self) -> None:
        system = BasicSystem(n_vertices=5)
        schedule_chain(system, [0, 1, 2, 3, 4])
        system.run_to_quiescence()
        assert len(system.oracle) == 0
        assert system.declarations == []

    def test_near_cycle_is_an_alias_for_chain(self) -> None:
        system = BasicSystem(n_vertices=3)
        schedule_near_cycle(system, [0, 1, 2])
        system.run_to_quiescence()
        assert system.declarations == []


class TestCycleWithTails:
    def test_tails_are_deadlocked_but_off_cycle(self) -> None:
        system = BasicSystem(n_vertices=6)
        schedule_cycle_with_tails(system, [0, 1, 2], [[3], [4, 5]])
        system.run_to_quiescence()
        on_cycle = system.oracle.vertices_on_dark_cycles()
        assert on_cycle == {v(0), v(1), v(2)}
        # Tails blocked forever (their edges are permanent).
        for tail in (3, 4, 5):
            assert system.vertex(tail).blocked
            assert system.oracle.permanent_black_edges_from(v(tail))
        system.assert_soundness()

    def test_no_tails_degenerates_to_cycle(self) -> None:
        system = BasicSystem(n_vertices=3)
        schedule_cycle_with_tails(system, [0, 1, 2], [])
        system.run_to_quiescence()
        assert system.oracle.vertices_on_dark_cycles() == {v(0), v(1), v(2)}


class TestFigureEight:
    def test_shared_vertex_on_both_cycles(self) -> None:
        system = BasicSystem(n_vertices=5)
        schedule_figure_eight(system, shared=0, left=[1, 2], right=[3, 4])
        system.run_to_quiescence()
        assert system.oracle.vertices_on_dark_cycles() == {v(i) for i in range(5)}
        system.assert_soundness()
        system.assert_completeness()


class TestPingPong:
    def test_no_deadlock_ever_forms(self) -> None:
        system = BasicSystem(n_vertices=4, service_delay=0.5)
        schedule_ping_pong(system, [(0, 1), (2, 3)], repetitions=5)
        system.run_to_quiescence()
        assert system.declarations == []
        assert len(system.oracle) == 0
        # Formation tracker never saw a dark cycle either.
        assert system.deadlock_formed_at == {}

    def test_edges_never_coexist(self) -> None:
        system = BasicSystem(n_vertices=2, service_delay=0.5)
        schedule_ping_pong(system, [(0, 1)], repetitions=4)

        overlap: list[float] = []

        def watch(event) -> None:
            if event.category == "basic.request.sent":
                if system.oracle.has_edge(v(0), v(1)) and system.oracle.has_edge(
                    v(1), v(0)
                ):
                    overlap.append(event.time)

        system.simulator.tracer.subscribe(watch)
        system.run_to_quiescence()
        assert overlap == []
