"""The workload seam: specs, ids, and the family registry."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.workloads.spec import (
    WorkloadFamily,
    WorkloadSpec,
    all_families,
    default_random_family,
    families_for_model,
    family_names,
    get_family,
    make_params,
    register_family,
    require_model,
)


class TestWorkloadSpec:
    def test_pickle_round_trip_preserves_identity(self) -> None:
        spec = WorkloadSpec(
            family="er", n=16, seed=7, duration=40.0, params=make_params(p=0.1)
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.workload_id == spec.workload_id

    def test_workload_id_is_stable(self) -> None:
        # The id format is a published contract (artifact names, cell
        # keys); these goldens pin it.
        assert WorkloadSpec(family="cycle", n=4).workload_id == "cycle/n=4/seed=0"
        assert (
            WorkloadSpec(
                family="er", n=16, seed=3, params=make_params(p=0.125)
            ).workload_id
            == "er/n=16/seed=3/p=0.125"
        )
        assert (
            WorkloadSpec(
                family="ddb-hot",
                n=3,
                seed=1,
                duration=200.0,
                params=make_params(load=1.5, resolve=1.0),
            ).workload_id
            == "ddb-hot/n=3/seed=1/dur=200/load=1.5/resolve=1"
        )

    def test_with_seed_rekeys_only_the_seed(self) -> None:
        spec = WorkloadSpec(family="ba", n=16, params=make_params(m=2))
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.family == spec.family
        assert reseeded.params == spec.params

    def test_param_lookup_and_default(self) -> None:
        spec = WorkloadSpec(family="dense", n=8, params=make_params(fan_out=3))
        assert spec.param("fan_out") == 3.0
        assert spec.param("absent", 1.5) == 1.5
        with pytest.raises(ConfigurationError, match="absent"):
            spec.param("absent")

    def test_param_list_collects_repeats(self) -> None:
        spec = WorkloadSpec(
            family="cycle-with-tails",
            n=8,
            params=(("cycle", 3.0), ("tail", 2.0), ("tail", 3.0)),
        )
        assert spec.param_list("tail") == [2.0, 3.0]


class TestRegistry:
    def test_unknown_family_names_the_offender(self) -> None:
        with pytest.raises(ConfigurationError, match="no-such-scenario"):
            get_family("no-such-scenario")

    def test_require_model_names_family_and_models(self) -> None:
        with pytest.raises(ConfigurationError, match="'ddb-mix' cannot drive"):
            require_model(get_family("ddb-mix"), "basic")

    def test_duplicate_registration_rejected(self) -> None:
        cycle = get_family("cycle")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_family(
                WorkloadFamily(
                    name="cycle",
                    title=cycle.title,
                    description=cycle.description,
                    models=cycle.models,
                    deadlock_capable=cycle.deadlock_capable,
                    randomized=cycle.randomized,
                    source=cycle.source,
                    schedule=cycle.schedule,
                    example=cycle.example,
                )
            )

    def test_default_random_family_per_model(self) -> None:
        assert default_random_family("basic").name == "random"
        assert default_random_family("ddb").name == "ddb-mix"
        # The ensembles drive the OR model too; `er` registers first.
        assert default_random_family("ormodel").name == "er"
        with pytest.raises(ConfigurationError, match="'nosuch'"):
            default_random_family("nosuch")

    def test_families_for_model_is_capability_filtered(self) -> None:
        ddb_names = {family.name for family in families_for_model("ddb")}
        assert "ddb-mix" in ddb_names
        assert "cycle" not in ddb_names

    def test_every_family_declares_a_runnable_example(self) -> None:
        for family in all_families():
            assert family.example.family == family.name
            assert family.supports_model(family.models[0])
            assert family.name in family_names()
