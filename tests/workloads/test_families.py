"""Registry-wide family properties: determinism, examples, semantics."""

from __future__ import annotations

import pytest

from repro.core.registry import get_variant
from repro.obs.export import events_to_jsonl
from repro.workloads.provision import ProvisionedWorkload, provision_workload
from repro.workloads.spec import all_families, get_family

#: The registered variant that drives each model's families.
MODEL_VARIANTS = {"basic": "basic", "ddb": "ddb", "ormodel": "ormodel"}


def _family_ids() -> list[str]:
    return [family.name for family in all_families()]


def _run_example(name: str) -> ProvisionedWorkload:
    family = get_family(name)
    variant = get_variant(MODEL_VARIANTS[family.models[0]])
    run = provision_workload(variant, family.example)
    run.run_to_quiescence()
    return run


@pytest.mark.parametrize("name", _family_ids())
class TestEveryFamily:
    def test_same_spec_same_trace(self, name: str) -> None:
        # The determinism contract: a spec fully determines the run on
        # the simulator backend, byte for byte.
        first = events_to_jsonl(_run_example(name).system.simulator.tracer)
        second = events_to_jsonl(_run_example(name).system.simulator.tracer)
        assert first == second

    def test_example_runs_sound_and_complete(self, name: str) -> None:
        outcome = _run_example(name).summarize()
        assert outcome.soundness_violations == 0
        assert outcome.complete
        if not get_family(name).deadlock_capable:
            assert outcome.declarations == 0

    def test_extra_fields_match_the_declaration(self, name: str) -> None:
        family = get_family(name)
        extra = _run_example(name).extra()
        assert set(extra) == set(family.outcome_fields)


@pytest.mark.parametrize("name", ("er", "ba"))
class TestEnsemblesOnTheOrModel:
    """The same ensemble family drives both models (sim half; the live
    half rides tests/transport/test_live_conformance.py)."""

    def test_family_declares_both_models(self, name: str) -> None:
        family = get_family(name)
        assert family.supports_model("basic")
        assert family.supports_model("ormodel")

    def test_example_runs_on_the_or_model(self, name: str) -> None:
        family = get_family(name)
        run = provision_workload(get_variant("ormodel"), family.example)
        run.run_to_quiescence()
        outcome = run.summarize()
        assert outcome.soundness_violations == 0
        assert outcome.complete
        extra = run.extra()
        assert set(extra) == set(family.outcome_fields)

    def test_or_model_random_scenario_resolves(self, name: str) -> None:
        from repro.workloads.spec import default_random_family

        assert default_random_family("ormodel").name == "er"


class TestBurstySemantics:
    def test_planted_cycle_is_the_only_deadlock(self) -> None:
        run = _run_example("bursty")
        outcome = run.summarize()
        extra = run.extra()
        # Exactly the planted 3-cycle declares, after the cycle closes.
        assert outcome.declarations == 3
        assert outcome.first_declaration_at is not None
        assert outcome.first_declaration_at > extra["cycle_closed_at"]

    def test_too_small_layouts_rejected(self) -> None:
        from repro.errors import ConfigurationError
        from repro.workloads.spec import WorkloadSpec

        with pytest.raises(ConfigurationError, match="n >= 9"):
            get_family("bursty").validate(WorkloadSpec(family="bursty", n=8))


class TestNearCycleSemantics:
    def test_near_cycle_is_not_an_alias_of_cycle(self) -> None:
        # The adversarial near-miss: same topology size, closing request
        # withheld, so the cycle declares and the near-cycle must not.
        assert _run_example("cycle").summarize().declarations > 0
        assert _run_example("near-cycle").summarize().declarations == 0

    def test_families_carry_distinct_docstrings(self) -> None:
        cycle, near = get_family("cycle"), get_family("near-cycle")
        assert cycle.description != near.description
