"""Generator properties of the random wait-graph ensembles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.ensembles import (
    barabasi_albert_edges,
    erdos_renyi_edges,
    requests_from_edges,
    spec_rng,
)


class TestErdosRenyi:
    def test_same_rng_state_same_graph(self) -> None:
        a = erdos_renyi_edges(12, 0.2, spec_rng(5, "er"))
        b = erdos_renyi_edges(12, 0.2, spec_rng(5, "er"))
        assert a == b

    def test_different_seed_different_graph(self) -> None:
        a = erdos_renyi_edges(12, 0.2, spec_rng(5, "er"))
        b = erdos_renyi_edges(12, 0.2, spec_rng(6, "er"))
        assert a != b

    def test_p_zero_is_empty_and_p_one_is_complete(self) -> None:
        assert erdos_renyi_edges(8, 0.0, spec_rng(0, "er")) == []
        assert len(erdos_renyi_edges(8, 1.0, spec_rng(0, "er"))) == 8 * 7

    def test_no_self_loops_and_in_range(self) -> None:
        for i, j in erdos_renyi_edges(10, 0.5, spec_rng(1, "er")):
            assert i != j
            assert 0 <= i < 10 and 0 <= j < 10

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError, match="n >= 2"):
            erdos_renyi_edges(1, 0.5, spec_rng(0, "er"))
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            erdos_renyi_edges(4, 1.5, spec_rng(0, "er"))


class TestBarabasiAlbert:
    def test_same_rng_state_same_graph(self) -> None:
        a = barabasi_albert_edges(16, 2, spec_rng(3, "ba"))
        b = barabasi_albert_edges(16, 2, spec_rng(3, "ba"))
        assert a == b

    def test_edge_count_matches_growth(self) -> None:
        # Seed clique of m+1 vertices plus m edges per later vertex.
        n, m = 16, 2
        edges = barabasi_albert_edges(n, m, spec_rng(0, "ba"))
        assert len(edges) == m * (m + 1) // 2 + m * (n - m - 1)

    def test_no_self_loops_and_in_range(self) -> None:
        for i, j in barabasi_albert_edges(12, 3, spec_rng(2, "ba")):
            assert i != j
            assert 0 <= i < 12 and 0 <= j < 12

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError, match="m >= 1"):
            barabasi_albert_edges(8, 0, spec_rng(0, "ba"))
        with pytest.raises(ConfigurationError, match="m \\+ 2"):
            barabasi_albert_edges(3, 2, spec_rng(0, "ba"))


class TestRequestsFromEdges:
    def test_folds_out_edges_into_one_batch_per_requester(self) -> None:
        requests = requests_from_edges(4, [(0, 1), (0, 2), (2, 3), (1, 0)])
        assert requests == [(0, [1, 2]), (1, [0]), (2, [3])]

    def test_out_of_range_edge_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="outside the vertex range"):
            requests_from_edges(3, [(0, 5)])

    def test_duplicate_and_self_edges_collapse(self) -> None:
        assert requests_from_edges(3, [(0, 1), (0, 1), (1, 1)]) == [(0, [1])]
