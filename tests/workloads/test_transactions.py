"""Tests for the DDB transactional workload generator."""

from __future__ import annotations

import pytest

from repro.ddb.initiation import DdbImmediateInitiation
from repro.ddb.resolution import AbortAboutTransaction
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Acquire
from repro.errors import ConfigurationError
from repro.workloads.transactions import (
    TransactionWorkload,
    WorkloadParams,
    is_single_hop,
)


def build(
    seed: int = 0, params: WorkloadParams | None = None
) -> tuple[DdbSystem, TransactionWorkload]:
    system = DdbSystem(
        n_sites=3,
        resources=9,
        seed=seed,
        resolution=AbortAboutTransaction(),
        initiation=DdbImmediateInitiation(),
    )
    workload = TransactionWorkload(system, params)
    return system, workload


class TestParams:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            WorkloadParams(n_transactions=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(min_local=3, max_local=2).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(read_ratio=1.5).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(remote_probability=1.5).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(hotspot_probability=-0.1).validate()
        with pytest.raises(ConfigurationError):
            WorkloadParams(mean_backoff=0.0).validate()

    def test_system_without_resources_rejected(self) -> None:
        system = DdbSystem(n_sites=1, resources={})
        with pytest.raises(ConfigurationError):
            TransactionWorkload(system)


class TestSpecGeneration:
    def test_specs_are_representable_single_hop(self) -> None:
        # Every generated transaction fits the section 6 representable
        # class: local acquisitions, then at most one remote one.
        system, workload = build()
        for tid in range(1, 50):
            spec = workload.generate_spec(tid)
            assert is_single_hop(spec)
            workload.assert_representable(spec)  # must not raise

    def test_local_acquires_are_homed_at_home(self) -> None:
        system, workload = build()
        for tid in range(1, 30):
            spec = workload.generate_spec(tid)
            acquires = [op for op in spec.operations if isinstance(op, Acquire)]
            remote = [
                op
                for op in acquires
                if system.resource_home[op.items[0][0]] != spec.home
            ]
            assert len(remote) <= 1
            if remote:
                assert acquires[-1] is remote[0]

    def test_assert_representable_rejects_violations(self) -> None:
        from repro._ids import SiteId, TransactionId
        from repro.ddb.locks import LockMode
        from repro.ddb.transaction import TransactionSpec, acquire

        system, workload = build()
        X = LockMode.EXCLUSIVE
        # Two remote acquisitions.
        bad = TransactionSpec(
            tid=TransactionId(99),
            home=SiteId(0),
            operations=(acquire(("r1", X)), acquire(("r2", X))),
        )
        with pytest.raises(ConfigurationError):
            workload.assert_representable(bad)
        # Local acquisition after the remote hop.
        bad2 = TransactionSpec(
            tid=TransactionId(98),
            home=SiteId(0),
            operations=(acquire(("r1", X)), acquire(("r0", X))),
        )
        with pytest.raises(ConfigurationError):
            workload.assert_representable(bad2)

    def test_hotspot_concentrates_remote_hops(self) -> None:
        params = WorkloadParams(
            remote_probability=1.0, hotspot_probability=0.95, hotspot_size=1
        )
        _, workload = build(params=params)
        hits = total = 0
        for tid in range(1, 60):
            spec = workload.generate_spec(tid)
            acquires = [op for op in spec.operations if isinstance(op, Acquire)]
            remote = acquires[-1].items[0][0]
            total += 1
            hits += remote == "r0"
        # r0 is homed at S0; transactions homed elsewhere hit it ~95%.
        assert hits / total > 0.4

    def test_read_ratio_extremes(self) -> None:
        from repro.ddb.locks import LockMode

        params = WorkloadParams(read_ratio=1.0)
        _, workload = build(params=params)
        spec = workload.generate_spec(1)
        modes = {op.items[0][1] for op in spec.operations if isinstance(op, Acquire)}
        assert modes == {LockMode.SHARED}


class TestZipfPopularity:
    def test_zipf_s_must_be_non_negative(self) -> None:
        with pytest.raises(ConfigurationError, match="zipf_s"):
            WorkloadParams(zipf_s=-0.5).validate()

    @staticmethod
    def _remote_counts(zipf_s: float, seed: int = 0) -> dict[str, int]:
        params = WorkloadParams(
            remote_probability=1.0,
            hotspot_probability=0.0,
            zipf_s=zipf_s,
            mean_think=0.0,
        )
        _, workload = build(seed=seed, params=params)
        counts: dict[str, int] = {}
        for tid in range(1, 600):
            spec = workload.generate_spec(tid)
            acquires = [op for op in spec.operations if isinstance(op, Acquire)]
            remote = str(acquires[-1].items[0][0])
            counts[remote] = counts.get(remote, 0) + 1
        return counts

    def test_zipf_skews_remote_picks_by_rank(self) -> None:
        skewed = self._remote_counts(zipf_s=1.5)
        uniform = self._remote_counts(zipf_s=0.0)
        # Rank 1 (r0) dominates under Zipf but not under the uniform pick.
        assert skewed["r0"] > 2 * uniform["r0"]
        assert skewed["r0"] > skewed.get("r8", 0)

    def test_zipf_zero_preserves_the_uniform_rng_path(self) -> None:
        # zipf_s=0 must consume the RNG exactly as the historical uniform
        # branch did, so committed ddb grids stay byte-identical.
        explicit = self._remote_counts(zipf_s=0.0)
        params = WorkloadParams(
            remote_probability=1.0, hotspot_probability=0.0, mean_think=0.0
        )
        _, workload = build(params=params)
        default: dict[str, int] = {}
        for tid in range(1, 600):
            spec = workload.generate_spec(tid)
            acquires = [op for op in spec.operations if isinstance(op, Acquire)]
            remote = str(acquires[-1].items[0][0])
            default[remote] = default.get(remote, 0) + 1
        assert explicit == default

    def test_zipf_is_seed_deterministic(self) -> None:
        assert self._remote_counts(1.2, seed=7) == self._remote_counts(1.2, seed=7)
        assert self._remote_counts(1.2, seed=7) != self._remote_counts(1.2, seed=8)


class TestExecution:
    def test_workload_runs_and_commits(self) -> None:
        params = WorkloadParams(
            n_transactions=12,
            mean_think=0.5,
            arrival_window=10.0,
            restart_horizon=400.0,
        )
        system, workload = build(seed=3, params=params)
        workload.start()
        system.run_to_quiescence(max_events=1_000_000)
        assert workload.stats.commits == 12
        assert system.soundness_violations == []
        system.assert_no_deadlock_remains()
        assert workload.stats.mean_response_time > 0

    def test_high_contention_all_commit_eventually(self) -> None:
        params = WorkloadParams(
            n_transactions=8,
            min_local=1,
            max_local=1,
            remote_probability=1.0,
            read_ratio=0.0,
            hotspot_probability=0.8,
            hotspot_size=2,
            mean_think=1.0,
            arrival_window=4.0,
            restart_horizon=2000.0,
        )
        system, workload = build(seed=7, params=params)
        workload.start()
        system.run_to_quiescence(max_events=2_000_000)
        assert workload.stats.commits == 8
        assert system.soundness_violations == []

    def test_no_restart_mode_leaves_aborts_final(self) -> None:
        params = WorkloadParams(
            n_transactions=8,
            remote_probability=1.0,
            read_ratio=0.0,
            hotspot_probability=0.9,
            hotspot_size=2,
            restart_aborted=False,
            arrival_window=4.0,
        )
        system, workload = build(seed=5, params=params)
        workload.start()
        system.run_to_quiescence(max_events=1_000_000)
        assert workload.stats.commits + workload.stats.aborts == 8
        system.assert_no_deadlock_remains()

    def test_deterministic_given_seed(self) -> None:
        outcomes = []
        for _ in range(2):
            params = WorkloadParams(n_transactions=10, restart_horizon=300.0)
            system, workload = build(seed=9, params=params)
            workload.start()
            system.run_to_quiescence(max_events=1_000_000)
            outcomes.append((workload.stats.commits, workload.stats.aborts, system.now))
        assert outcomes[0] == outcomes[1]

    def test_stats_mean_requires_commits(self) -> None:
        from repro.workloads.transactions import WorkloadStats

        with pytest.raises(ValueError):
            _ = WorkloadStats().mean_response_time
