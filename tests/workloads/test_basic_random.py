"""Tests for the random basic-model workload driver."""

from __future__ import annotations

import pytest

from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.workloads.basic_random import RandomRequestWorkload


def build(n: int = 6, seed: int = 0, **kwargs) -> tuple[BasicSystem, RandomRequestWorkload]:
    system = BasicSystem(n_vertices=n, seed=seed, service_delay=0.5)
    workload = RandomRequestWorkload(system, duration=30.0, **kwargs)
    return system, workload


class TestValidation:
    def test_bad_think_time(self) -> None:
        system = BasicSystem(n_vertices=3)
        with pytest.raises(ConfigurationError):
            RandomRequestWorkload(system, mean_think=0.0)

    def test_bad_fan_out(self) -> None:
        system = BasicSystem(n_vertices=3)
        with pytest.raises(ConfigurationError):
            RandomRequestWorkload(system, max_targets=3)
        with pytest.raises(ConfigurationError):
            RandomRequestWorkload(system, max_targets=0)

    def test_bad_probability(self) -> None:
        system = BasicSystem(n_vertices=3)
        with pytest.raises(ConfigurationError):
            RandomRequestWorkload(system, request_probability=0.0)


class TestBehaviour:
    def test_issues_requests_and_quiesces(self) -> None:
        system, workload = build()
        workload.start()
        system.run_to_quiescence(max_events=200_000)
        assert workload.requests_issued > 0
        system.assert_soundness()

    def test_no_requests_after_duration(self) -> None:
        system, workload = build()
        workload.start()
        system.run_to_quiescence(max_events=200_000)
        sends = system.simulator.tracer.events("basic.request.sent")
        assert all(event.time <= workload.duration for event in sends)

    def test_deterministic_given_seed(self) -> None:
        counts = []
        for _ in range(2):
            system, workload = build(seed=5)
            workload.start()
            system.run_to_quiescence(max_events=200_000)
            counts.append(
                (workload.requests_issued, len(system.declarations), system.now)
            )
        assert counts[0] == counts[1]

    def test_different_seeds_differ(self) -> None:
        outcomes = set()
        for seed in range(4):
            system, workload = build(seed=seed)
            workload.start()
            system.run_to_quiescence(max_events=200_000)
            outcomes.add((workload.requests_issued, system.now))
        assert len(outcomes) > 1

    def test_eventually_produces_deadlocks(self) -> None:
        # Over a handful of seeds with fan-out 2, deadlocks occur.
        deadlocks = 0
        for seed in range(6):
            system, workload = build(seed=seed, max_targets=2)
            workload.start()
            system.run_to_quiescence(max_events=200_000)
            deadlocks += len(system.oracle.vertices_on_dark_cycles())
        assert deadlocks > 0

    def test_blocked_vertices_do_not_rewake_spuriously(self) -> None:
        system, workload = build(seed=1, max_targets=2)
        workload.start()
        system.run_to_quiescence(max_events=200_000)
        # Deadlocked vertices stayed deadlocked: their edges persist.
        for vertex_id in system.oracle.vertices_on_dark_cycles():
            assert system.vertices[vertex_id].blocked
