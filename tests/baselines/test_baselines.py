"""Tests for the baseline detectors (centralized, path-pushing, timeout)."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.baselines.base import BaselineReport
from repro.baselines.centralized import CentralizedDetector
from repro.baselines.pathpush import PathPushingDetector
from repro.baselines.timeout import TimeoutDetector
from repro.basic.initiation import ManualInitiation
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.workloads.scenarios import schedule_cycle, schedule_ping_pong


def v(i: int) -> VertexId:
    return VertexId(i)


def deadlocked_system(k: int = 3, seed: int = 0) -> BasicSystem:
    system = BasicSystem(n_vertices=k, seed=seed, initiation=ManualInitiation())
    schedule_cycle(system, list(range(k)))
    return system


class TestReport:
    def test_rates(self) -> None:
        report = BaselineReport(name="x")
        assert report.false_positive_rate == 0.0
        from repro.baselines.base import BaselineDetection

        report.detections.append(BaselineDetection(1.0, v(0), genuine=True))
        report.detections.append(BaselineDetection(2.0, v(1), genuine=False))
        assert report.false_positive_rate == 0.5
        assert report.detected_vertices() == {v(0), v(1)}
        assert len(report.true_detections) == 1
        assert len(report.false_detections) == 1


class TestCentralized:
    def test_validation(self) -> None:
        system = deadlocked_system()
        with pytest.raises(ConfigurationError):
            CentralizedDetector(system, period=0.0)
        with pytest.raises(ConfigurationError):
            CentralizedDetector(system, min_delay=3.0, max_delay=1.0)

    def test_detects_real_deadlock(self) -> None:
        system = deadlocked_system()
        detector = CentralizedDetector(system, period=5.0, horizon=40.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detected_vertices() == {v(0), v(1), v(2)}
        assert all(d.genuine for d in detector.report.detections)

    def test_charges_2n_messages_per_round(self) -> None:
        system = deadlocked_system(k=4)
        detector = CentralizedDetector(system, period=5.0, horizon=21.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.rounds_completed == 4  # t = 5, 10, 15, 20
        assert detector.report.messages == 4 * 2 * 4

    def test_quiet_system_no_detections(self) -> None:
        system = BasicSystem(n_vertices=3, initiation=ManualInitiation())
        detector = CentralizedDetector(system, period=5.0, horizon=20.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detections == []

    def test_phantoms_on_ping_pong(self) -> None:
        # Inconsistent snapshots manufacture a cycle that never existed;
        # at least one seed in a small range must exhibit it.
        for seed in range(6):
            system = BasicSystem(
                n_vertices=2,
                seed=seed,
                service_delay=0.5,
                initiation=ManualInitiation(),
                strict=False,
            )
            schedule_ping_pong(system, [(0, 1)], repetitions=10)
            detector = CentralizedDetector(
                system, period=7.0, horizon=70.0, min_delay=0.5, max_delay=3.0
            )
            detector.start()
            system.run_to_quiescence(max_events=200_000)
            assert all(not d.genuine for d in detector.report.detections)
            if detector.report.false_detections:
                return
        pytest.fail("no phantom observed over 6 seeds")


class TestPathPushing:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            PathPushingDetector(deadlocked_system(), period=-1.0)

    def test_detects_real_deadlock(self) -> None:
        system = deadlocked_system()
        detector = PathPushingDetector(system, period=4.0, horizon=60.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detections
        assert all(d.genuine for d in detector.report.detections)

    def test_messages_deduplicated_across_rounds(self) -> None:
        system = deadlocked_system()
        detector = PathPushingDetector(system, period=4.0, horizon=100.0)
        detector.start()
        system.run_to_quiescence()
        # Once the full path set has circulated, no further messages flow,
        # even though rounds continue: message count is bounded.
        assert detector.report.messages <= 3 * 3 * 3

    def test_active_vertex_paths_are_dropped(self) -> None:
        system = BasicSystem(n_vertices=3, initiation=ManualInitiation())
        # A chain that resolves; stored paths must not linger.
        system.schedule_request(0.0, 0, [1])
        detector = PathPushingDetector(system, period=2.0, horizon=30.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detections == []
        assert all(not paths for paths in detector._paths.values())


class TestTimeout:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            TimeoutDetector(deadlocked_system(), window=0.0)

    def test_detects_real_deadlock(self) -> None:
        system = deadlocked_system()
        detector = TimeoutDetector(system, window=5.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detected_vertices() == {v(0), v(1), v(2)}
        assert all(d.genuine for d in detector.report.detections)

    def test_long_finite_wait_is_a_phantom(self) -> None:
        # Vertex 0 waits 20 units for a slow server; W=5 declares it.
        system = BasicSystem(
            n_vertices=2, service_delay=20.0, initiation=ManualInitiation()
        )
        detector = TimeoutDetector(system, window=5.0)
        detector.start()
        system.schedule_request(0.0, 0, [1])
        system.run_to_quiescence()
        assert len(detector.report.false_detections) == 1
        assert system.vertex(0).active  # the wait did resolve

    def test_short_wait_not_declared(self) -> None:
        system = BasicSystem(
            n_vertices=2, service_delay=1.0, initiation=ManualInitiation()
        )
        detector = TimeoutDetector(system, window=10.0)
        detector.start()
        system.schedule_request(0.0, 0, [1])
        system.run_to_quiescence()
        assert detector.report.detections == []

    def test_uses_no_messages(self) -> None:
        system = deadlocked_system()
        detector = TimeoutDetector(system, window=5.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.messages == 0
