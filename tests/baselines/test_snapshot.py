"""Tests for the Chandy-Lamport snapshot detector.

Unlike the other baselines (whose *failure modes* the tests demonstrate),
the snapshot detector carries a correctness guarantee: deadlock is stable,
so anything detected on a consistent cut is genuine.  The tests assert
exactly that -- zero phantoms on every workload, including the ones that
break centralized collection.
"""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.baselines.snapshot import SnapshotDetector
from repro.basic.initiation import ManualInitiation
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.sim.network import ExponentialDelay
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_cycle, schedule_ping_pong


def v(i: int) -> VertexId:
    return VertexId(i)


def manual_system(n: int, seed: int = 0, **kwargs) -> BasicSystem:
    return BasicSystem(
        n_vertices=n, seed=seed, initiation=ManualInitiation(), strict=False, **kwargs
    )


class TestSnapshotMechanics:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            SnapshotDetector(manual_system(3), period=0.0)

    def test_rounds_complete_on_idle_system(self) -> None:
        system = manual_system(4)
        detector = SnapshotDetector(system, period=5.0, horizon=21.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.rounds_completed == 4
        assert detector.report.detections == []

    def test_marker_cost_per_round(self) -> None:
        n = 5
        system = manual_system(n)
        detector = SnapshotDetector(system, period=5.0, horizon=6.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.rounds_completed == 1
        # N*(N-1) markers + N report messages.
        assert detector.report.messages == n * (n - 1) + n

    def test_detects_standing_deadlock(self) -> None:
        system = manual_system(4)
        schedule_cycle(system, [0, 1, 2, 3])
        detector = SnapshotDetector(system, period=6.0, horizon=30.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detected_vertices() == {v(0), v(1), v(2), v(3)}
        assert all(d.genuine for d in detector.report.detections)

    def test_tail_vertices_not_declared(self) -> None:
        # Snapshot evaluation uses SCCs: a tail waiting into the cycle is
        # not on it and must not be reported.
        from repro.workloads.scenarios import schedule_cycle_with_tails

        system = manual_system(5)
        schedule_cycle_with_tails(system, [0, 1, 2], [[3], [4]])
        detector = SnapshotDetector(system, period=8.0, horizon=40.0)
        detector.start()
        system.run_to_quiescence()
        assert detector.report.detected_vertices() == {v(0), v(1), v(2)}


class TestSnapshotCorrectnessGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_zero_phantoms_on_ping_pong(self, seed: int) -> None:
        # The exact workload that drives centralized collection to a 100%
        # phantom rate: the consistent cut must never see a cycle.
        system = manual_system(6, seed=seed, service_delay=0.5)
        schedule_ping_pong(system, [(0, 1), (2, 3), (4, 5)], repetitions=10)
        detector = SnapshotDetector(system, period=4.0, horizon=70.0)
        detector.start()
        system.run_to_quiescence(max_events=500_000)
        assert detector.report.detections == []

    @pytest.mark.parametrize("seed", range(6))
    def test_zero_phantoms_on_random_churn(self, seed: int) -> None:
        system = manual_system(
            8, seed=seed, delay_model=ExponentialDelay(mean=1.0), service_delay=0.5
        )
        RandomRequestWorkload(
            system, mean_think=1.5, max_targets=2, duration=40.0
        ).start()
        detector = SnapshotDetector(system, period=6.0, horizon=90.0)
        detector.start()
        system.run_to_quiescence(max_events=500_000)
        assert detector.report.false_detections == [], (
            "a consistent snapshot reported a phantom -- the stability "
            "argument or the channel recording is broken"
        )

    def test_in_flight_reply_excluded_from_cut(self) -> None:
        # 0 waits on 1 with the reply in flight at the cut: the recorded
        # channel shows the reply, so the edge is white-at-cut and no
        # cycle can include it.  Construct: 0 -> 1 resolves while 1 -> 0
        # forms; without the channel recording this is the centralized
        # detector's phantom.
        system = manual_system(2, service_delay=0.5)
        schedule_ping_pong(system, [(0, 1)], repetitions=6)
        detector = SnapshotDetector(system, period=1.7, horizon=40.0)
        detector.start()
        system.run_to_quiescence(max_events=200_000)
        assert detector.report.detections == []
        assert detector.rounds_completed >= 10
