"""Tests for the OR/communication-model detector."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.errors import ProtocolError
from repro.ormodel.system import OrSystem, OrWaitGraph
from repro.sim.network import ExponentialDelay


def v(i: int) -> VertexId:
    return VertexId(i)


class TestOracleCriterion:
    def test_active_vertex_not_deadlocked(self) -> None:
        graph = OrWaitGraph()
        assert not graph.is_deadlocked(v(0))

    def test_cycle_of_blocked_is_deadlocked(self) -> None:
        graph = OrWaitGraph()
        graph.set_dependents(v(0), {v(1)})
        graph.set_dependents(v(1), {v(0)})
        assert graph.is_deadlocked(v(0))
        assert graph.deadlocked_vertices() == {v(0), v(1)}

    def test_reachable_active_vertex_saves_everyone(self) -> None:
        # 0 waits any{1, 2}; 1 waits any{0}; 2 is active.
        graph = OrWaitGraph()
        graph.set_dependents(v(0), {v(1), v(2)})
        graph.set_dependents(v(1), {v(0)})
        assert not graph.is_deadlocked(v(0))
        assert not graph.is_deadlocked(v(1))  # 1 -> 0 -> 2 (active)

    def test_blocked_chain_into_active_not_deadlocked(self) -> None:
        graph = OrWaitGraph()
        graph.set_dependents(v(0), {v(1)})
        graph.set_dependents(v(1), {v(2)})
        assert not graph.is_deadlocked(v(0))

    def test_closure(self) -> None:
        graph = OrWaitGraph()
        graph.set_dependents(v(0), {v(1)})
        graph.set_dependents(v(1), {v(2)})
        assert graph.closure(v(0)) == {v(1), v(2)}


class TestUnderlyingComputation:
    def test_any_semantics_first_grant_unblocks(self) -> None:
        system = OrSystem(n_vertices=3, auto_initiate=False)
        system.schedule_request(0.0, 0, [1, 2])
        system.run_to_quiescence()
        assert system.vertex(0).active
        assert system.metrics.counter_value("or.grants.stale") >= 1

    def test_blocked_vertex_defers_grants(self) -> None:
        # 1 blocked on 2; 0 requests 1; 1 grants only after unblocking.
        system = OrSystem(n_vertices=3, auto_initiate=False, service_delay=2.0)
        system.schedule_request(0.0, 1, [2])
        system.schedule_request(0.1, 0, [1])
        system.run_to_quiescence()
        assert system.vertex(0).active
        unblock_times = {
            event["vertex"]: event.time
            for event in system.simulator.tracer.events("or.unblocked")
        }
        assert unblock_times[v(1)] < unblock_times[v(0)]

    def test_double_block_rejected(self) -> None:
        system = OrSystem(n_vertices=3, auto_initiate=False)
        system.vertex(0).request_any([v(1)])
        with pytest.raises(ProtocolError):
            system.vertex(0).request_any([v(2)])

    def test_self_wait_rejected(self) -> None:
        system = OrSystem(n_vertices=2)
        with pytest.raises(ProtocolError):
            system.vertex(0).request_any([v(0)])

    def test_manual_grant_requires_active(self) -> None:
        system = OrSystem(n_vertices=3, auto_grant=False, auto_initiate=False)
        system.schedule_request(0.0, 1, [2])
        system.schedule_request(0.1, 0, [1])
        system.run_to_quiescence()
        with pytest.raises(ProtocolError):
            system.vertex(1).grant_to(v(0))  # blocked
        with pytest.raises(ProtocolError):
            system.vertex(2).grant_to(v(9))  # no such request


class TestDetection:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_or_cycle_detected(self, k: int) -> None:
        system = OrSystem(n_vertices=k)
        for i in range(k):
            system.schedule_request(0.5 * i, i, [(i + 1) % k])
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()

    def test_or_alternative_prevents_deadlock_and_detection(self) -> None:
        # The defining any/all difference: the same topology deadlocks in
        # the AND model but not here, because 0 has an active alternative.
        system = OrSystem(n_vertices=4)
        system.schedule_request(0.0, 0, [1, 3])
        system.schedule_request(0.5, 1, [2])
        system.schedule_request(1.0, 2, [0])
        system.run_to_quiescence()
        assert system.declarations == []
        assert all(vertex.active for vertex in system.vertices.values())

    def test_fan_knot_detected(self) -> None:
        # 0 waits any{1,2}; both 1 and 2 wait any{0}: nobody can move.
        system = OrSystem(n_vertices=3)
        system.schedule_request(0.0, 1, [0])
        system.schedule_request(0.2, 2, [0])
        system.schedule_request(0.4, 0, [1, 2])
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()

    def test_blocked_tail_into_or_cycle(self) -> None:
        # 3 waits any{0} where 0,1,2 form a deadlocked OR-cycle: 3 is
        # deadlocked too (its only hope is inside the dead set) and must
        # have a declarer in its closure.
        system = OrSystem(n_vertices=4)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.3, 1, [2])
        system.schedule_request(0.6, 2, [0])
        system.schedule_request(3.0, 3, [0])
        system.run_to_quiescence()
        system.assert_soundness()
        system.assert_completeness()
        assert system.oracle.is_deadlocked(v(3))

    def test_active_vertex_initiation_is_noop(self) -> None:
        system = OrSystem(n_vertices=2, auto_initiate=False)
        assert system.vertex(0).initiate_detection() is None

    @pytest.mark.parametrize("seed", range(6))
    def test_random_histories_sound_and_complete(self, seed: int) -> None:
        import random

        system = OrSystem(
            n_vertices=8,
            seed=seed,
            delay_model=ExponentialDelay(mean=1.0),
            service_delay=0.5,
            strict=False,
        )
        rng = random.Random(seed)

        def act(i: int) -> None:
            vertex = system.vertex(i)
            if vertex.blocked:
                return
            others = [j for j in range(8) if j != i]
            targets = rng.sample(others, rng.randint(1, 2))
            system.request_any(i, targets)

        for step in range(60):
            system.simulator.schedule_at(
                0.5 * step + rng.random(), lambda i=rng.randrange(8): act(i)
            )
        system.run_to_quiescence(max_events=400_000)
        system.assert_soundness()
        system.assert_completeness()
        # Stability: declared vertices never unblocked afterwards.
        for declaration in system.declarations:
            assert system.vertices[declaration.vertex].blocked

    def test_query_traffic_bounded(self) -> None:
        system = OrSystem(n_vertices=4)
        for i in range(4):
            system.schedule_request(0.5 * i, i, [(i + 1) % 4])
        system.run_to_quiescence()
        # Per computation: at most one engaging query per edge plus one
        # non-engaging echo per edge => <= 2 * E * computations.
        queries = system.metrics.counter_value("or.queries.sent")
        computations = system.metrics.counter_value("or.computations.initiated")
        assert queries <= 2 * 4 * computations
