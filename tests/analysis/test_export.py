"""Tests for JSON export of experiment results."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.export import experiment_to_json, _jsonable
from repro.analysis.tables import Table


@dataclass
class FakeResult:
    label: str
    count: int
    ratio: float
    members: frozenset


class TestJsonable:
    def test_dataclass_roundtrip(self) -> None:
        result = FakeResult("x", 3, 0.5, frozenset({2, 1}))
        data = _jsonable(result)
        assert data == {"label": "x", "count": 3, "ratio": 0.5, "members": [1, 2]}

    def test_nested_containers(self) -> None:
        assert _jsonable({"a": (1, 2), "b": [3]}) == {"a": [1, 2], "b": [3]}

    def test_nan_becomes_null(self) -> None:
        assert _jsonable(float("nan")) is None

    def test_unknown_objects_stringified(self) -> None:
        class Weird:
            def __repr__(self) -> str:
                return "weird!"

        assert _jsonable(Weird()) == "weird!"

    def test_unsortable_set_still_exported(self) -> None:
        data = _jsonable({1, "a"})
        assert sorted(map(str, data)) == ["1", "a"]


class TestExperimentToJson:
    def test_document_structure(self) -> None:
        table = Table("T title", ["a", "b"])
        table.add_row(1, 2)
        results = [FakeResult("r", 1, 0.25, frozenset())]
        document = json.loads(experiment_to_json("E9", table, results, quick=True))
        assert document["experiment"] == "E9"
        assert document["quick_mode"] is True
        assert document["columns"] == ["a", "b"]
        assert document["rows"] == [["1", "2"]]
        assert document["results"][0]["label"] == "r"
        assert "library_version" in document

    def test_real_experiment_serialises(self) -> None:
        from repro.experiments import e4_state

        table, results = e4_state.run(quick=True)
        document = json.loads(experiment_to_json("E4", table, results, quick=True))
        assert document["results"]
        assert all("within_bound" not in r or True for r in document["results"])
