"""Tests for the ASCII timeline renderers."""

from __future__ import annotations

from repro.analysis.timeline import render_lanes, render_timeline
from repro.basic.system import BasicSystem
from repro.workloads.scenarios import schedule_cycle


def deadlocked_trace() -> BasicSystem:
    system = BasicSystem(n_vertices=3)
    schedule_cycle(system, [0, 1, 2])
    system.run_to_quiescence()
    return system


class TestRenderTimeline:
    def test_contains_key_events_in_order(self) -> None:
        system = deadlocked_trace()
        rendered = render_timeline(system.simulator.tracer)
        assert "v0 requests v1" in rendered
        assert "turns black" in rendered
        assert "DECLARES DEADLOCK" in rendered
        # Chronological: the first request precedes the declaration.
        assert rendered.index("requests") < rendered.index("DECLARES")

    def test_include_filter(self) -> None:
        system = deadlocked_trace()
        rendered = render_timeline(
            system.simulator.tracer, include=["basic.deadlock"]
        )
        assert "DECLARES DEADLOCK" in rendered
        assert "requests" not in rendered

    def test_limit_truncates(self) -> None:
        system = deadlocked_trace()
        rendered = render_timeline(system.simulator.tracer, limit=3)
        assert rendered.count("\n") == 3  # 3 events + truncation marker
        assert "truncated" in rendered

    def test_unknown_category_fallback(self) -> None:
        from repro.sim.trace import Tracer

        tracer = Tracer()
        tracer.record(1.0, "custom.thing", detail=42)
        rendered = render_timeline(tracer, include=["custom"])
        assert "custom.thing" in rendered
        assert "42" in rendered

    def test_timestamps_monotone(self) -> None:
        system = deadlocked_trace()
        rendered = render_timeline(system.simulator.tracer)
        times = [
            float(line.split("t=")[1].split()[0])
            for line in rendered.splitlines()
            if line.startswith("t=")
        ]
        assert times == sorted(times)


class TestRenderLanes:
    def test_lane_chart_structure(self) -> None:
        system = deadlocked_trace()
        rendered = render_lanes(system.simulator.tracer, n_vertices=3)
        lines = rendered.splitlines()
        assert "v0" in lines[0] and "v2" in lines[0]
        assert any("DEADLOCK" in line for line in lines)
        assert any("request" in line for line in lines)

    def test_marks_present(self) -> None:
        system = deadlocked_trace()
        rendered = render_lanes(system.simulator.tracer, n_vertices=3)
        assert "*" in rendered  # sends
        assert "o" in rendered  # meaningful receipts
        assert "X" in rendered  # declarations
