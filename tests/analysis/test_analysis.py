"""Tests for tables and statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import confidence_interval_95, mean, stdev, summarize
from repro.analysis.tables import Table
from repro.errors import ConfigurationError


class TestTable:
    def test_render_contains_title_columns_rows(self) -> None:
        table = Table("My Title", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 12345.0)
        rendered = table.render()
        assert "My Title" in rendered
        assert "a" in rendered and "b" in rendered
        assert "2.500" in rendered
        assert "12,345" in rendered

    def test_row_arity_checked(self) -> None:
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_empty_columns_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            Table("t", [])

    def test_float_formatting_ranges(self) -> None:
        assert Table._format(0.0) == "0"
        assert Table._format(0.1234) == "0.123"
        assert Table._format(42.0) == "42.0"
        assert Table._format(1234.5) == "1,234"
        assert Table._format("text") == "text"

    def test_str_equals_render(self) -> None:
        table = Table("t", ["a"])
        table.add_row(1)
        assert str(table) == table.render()

    def test_columns_align(self) -> None:
        table = Table("t", ["col", "other"])
        table.add_row("longvalue", 1)
        table.add_row("x", 22)
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all data + header rows equal width


class TestStats:
    def test_mean(self) -> None:
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stdev(self) -> None:
        assert stdev([5.0]) == 0.0
        assert stdev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_confidence_interval(self) -> None:
        assert confidence_interval_95([1.0]) == 0.0
        ci = confidence_interval_95([1.0, 2.0, 3.0, 4.0])
        assert ci > 0

    def test_summary(self) -> None:
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert "n=3" in str(summary)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_mean_within_bounds(self, values: list[float]) -> None:
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_stdev_nonnegative(self, values: list[float]) -> None:
        assert stdev(values) >= 0.0
