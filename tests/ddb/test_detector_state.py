"""Tests for DDB detector state bookkeeping (pruning, labelled sets)."""

from __future__ import annotations

from repro._ids import ProbeTag, ProcessId, SiteId, TransactionId
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, acquire

from tests.ddb.helpers import X, cross_deadlock, spec, two_site_system


def pid(tid: int, site: int) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


class TestPruning:
    def test_initiator_state_pruned_after_commit(self) -> None:
        # Plain contention: computations are initiated for waits that
        # resolve; the initiator-side records must be reclaimed.
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r1", X)), Think(3.0)), at=0.0)
        system.begin(spec(2, 1, acquire(("r1", X))), at=0.5)
        system.run_to_quiescence()
        assert system.declarations == []
        for controller in system.controllers.values():
            for tag, computation in controller.detector._computations.items():
                assert computation.about is None, (
                    f"unpruned initiator record {tag} at C{controller.site}"
                )

    def test_prune_forwarded_caps_records(self) -> None:
        from repro.ddb.detector import DdbComputation

        system = two_site_system()
        detector = system.controller(0).detector
        for i in range(50):
            tag = ProbeTag(initiator=1, sequence=i + 1)
            detector._computations[tag] = DdbComputation(tag=tag, about=None)
        detector.prune_forwarded(max_records=10)
        assert detector.tracked_computations == 10

    def test_prune_forwarded_keeps_initiator_records(self) -> None:
        from repro.ddb.detector import DdbComputation

        system = two_site_system()
        detector = system.controller(0).detector
        own = ProbeTag(initiator=0, sequence=1)
        detector._computations[own] = DdbComputation(tag=own, about=pid(9, 0))
        for i in range(20):
            tag = ProbeTag(initiator=1, sequence=i + 1)
            detector._computations[tag] = DdbComputation(tag=tag, about=None)
        detector.prune_forwarded(max_records=5)
        assert own in detector._computations


class TestLabelledSets:
    def test_labelled_for_contains_cycle_transactions(self) -> None:
        system = two_site_system()
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        declaration = system.declarations[0]
        controller = system.controllers[declaration.site]
        labelled = controller.detector.labelled_for(declaration.tag)
        transactions = {p.transaction for p in labelled}
        assert transactions == {TransactionId(1), TransactionId(2)}

    def test_labelled_for_unknown_tag_is_empty(self) -> None:
        system = two_site_system()
        assert system.controller(0).detector.labelled_for(
            ProbeTag(initiator=9, sequence=9)
        ) == set()
