"""Stateful property testing of the lock manager.

Hypothesis drives random request/release/cancel sequences against a
:class:`ResourceLock` while these invariants are checked after every step:

* holders are pairwise compatible (never two exclusive holders, never a
  shared and an exclusive holder together, upgrades exempted because a
  process holds one mode at a time);
* no waiting request is currently grantable (the grant-any-compatible
  sweep is exhaustive -- a grantable waiter would mean a lost wakeup,
  which in the full system is an undetectable stall);
* a process never appears twice in the wait queue;
* the wait-for derivation is consistent: every waits_for() target is a
  current holder with an incompatible mode.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.locks import LockMode, ResourceLock, compatible

PROCESSES = [
    ProcessId(transaction=TransactionId(t), site=SiteId(0)) for t in range(1, 6)
]
MODES = [LockMode.SHARED, LockMode.EXCLUSIVE]


class LockMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.lock = ResourceLock(ResourceId("r"))

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(process=st.sampled_from(PROCESSES), mode=st.sampled_from(MODES))
    def request(self, process: ProcessId, mode: LockMode) -> None:
        if any(w.process == process for w in self.lock.waiters):
            return  # overlapping requests are a caller error by contract
        self.lock.request(process, mode)

    @rule(index=st.integers(min_value=0, max_value=4))
    def release(self, index: int) -> None:
        holders = sorted(self.lock.holders)
        if not holders:
            return
        self.lock.release(holders[index % len(holders)])

    @rule(index=st.integers(min_value=0, max_value=4))
    def cancel(self, index: int) -> None:
        if not self.lock.waiters:
            return
        waiter = self.lock.waiters[index % len(self.lock.waiters)]
        self.lock.cancel(waiter.process)

    @rule(index=st.integers(min_value=0, max_value=4))
    def abort(self, index: int) -> None:
        process = PROCESSES[index % len(PROCESSES)]
        self.lock.release_or_cancel(process)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def holders_pairwise_compatible(self) -> None:
        holders = list(self.lock.holders.items())
        for i, (process_a, mode_a) in enumerate(holders):
            for process_b, mode_b in holders[i + 1 :]:
                assert compatible(mode_a, mode_b), (
                    f"incompatible co-holders: {process_a}:{mode_a} "
                    f"{process_b}:{mode_b}"
                )

    @invariant()
    def no_grantable_waiter(self) -> None:
        for waiter in self.lock.waiters:
            held = self.lock.holders.get(waiter.process)
            if held is not None:
                # Upgrade waiter: grantable iff sole holder.
                assert len(self.lock.holders) > 1, f"lost upgrade wakeup: {waiter}"
            else:
                blocked_by = [
                    holder
                    for holder, mode in self.lock.holders.items()
                    if holder != waiter.process and not compatible(mode, waiter.mode)
                ]
                assert blocked_by, f"lost wakeup: grantable waiter {waiter}"

    @invariant()
    def no_duplicate_waiters(self) -> None:
        processes = [w.process for w in self.lock.waiters]
        assert len(processes) == len(set(processes))

    @invariant()
    def wait_for_targets_are_incompatible_holders(self) -> None:
        for waiter in self.lock.waiters:
            for target in self.lock.waits_for(waiter.process):
                assert target in self.lock.holders
                assert not compatible(self.lock.holders[target], waiter.mode)


TestLockMachine = LockMachine.TestCase
TestLockMachine.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
