"""Integration tests for the DDB probe computation (sections 6.5-6.7)."""

from __future__ import annotations

import pytest

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.initiation import (
    DdbImmediateInitiation,
    DdbManualInitiation,
    DdbPeriodicInitiation,
)
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, acquire
from repro.errors import ConfigurationError

from tests.ddb.helpers import S, X, cross_deadlock, ring_deadlock, spec, two_site_system


def pid(tid: int, site: int) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


class TestCrossSiteDetection:
    def test_two_site_cross_deadlock_detected(self) -> None:
        system = two_site_system()
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()

    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
    def test_ring_deadlock_across_n_sites(self, n: int) -> None:
        system = ring_deadlock(n)
        system.run_to_quiescence()
        assert system.declarations, f"{n}-site ring not detected"
        system.assert_soundness()
        system.assert_completeness()

    def test_declared_process_is_on_the_ring(self) -> None:
        system = ring_deadlock(3)
        system.run_to_quiescence()
        deadlocked = system.oracle.processes_on_dark_cycles()
        for declaration in system.declarations:
            assert declaration.process in deadlocked

    def test_detection_latency_recorded(self) -> None:
        system = ring_deadlock(3)
        system.run_to_quiescence()
        histogram = system.metrics.histogram("ddb.detection.latency")
        assert histogram.count >= 1


class TestLocalCycleDetection:
    def test_upgrade_deadlock_same_site(self) -> None:
        # Both transactions hold r0 shared, both request exclusive:
        # a purely intra-controller cycle, declared without any probes.
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", S)), Think(1.0), acquire(("r0", X))), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", S)), Think(1.0), acquire(("r0", X))), at=0.1)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        assert system.metrics.counter_value("ddb.probes.sent") == 0

    def test_local_two_resource_cycle(self) -> None:
        resources = {ResourceId("a"): SiteId(0), ResourceId("b"): SiteId(0)}
        system = DdbSystem(n_sites=1, resources=resources)
        system.begin(spec(1, 0, acquire(("a", X)), Think(1.0), acquire(("b", X))), at=0.0)
        system.begin(spec(2, 0, acquire(("b", X)), Think(1.0), acquire(("a", X))), at=0.1)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()


class TestNoFalsePositives:
    def test_plain_contention_never_declares(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(3.0)), at=0.0)
        system.begin(spec(2, 1, acquire(("r0", X)), Think(1.0)), at=0.5)
        system.begin(spec(3, 0, acquire(("r0", X))), at=0.7)
        system.run_to_quiescence()
        assert system.declarations == []
        assert all(r.commits == 1 for r in system.transactions.values())

    def test_shared_waves_never_declare(self) -> None:
        system = two_site_system()
        for i in range(6):
            system.begin(
                spec(i + 1, i % 2, acquire(("r0", S), ("r1", S)), Think(0.5)),
                at=0.3 * i,
            )
        system.run_to_quiescence()
        assert system.declarations == []

    @pytest.mark.parametrize("seed", range(5))
    def test_churn_without_cycles_is_silent(self, seed: int) -> None:
        from repro.sim.network import UniformDelay

        # All transactions acquire resources in a fixed global order, which
        # provably cannot deadlock; the detector must stay silent.
        resources = {ResourceId(f"r{i}"): SiteId(i % 3) for i in range(6)}
        system = DdbSystem(
            n_sites=3,
            resources=resources,
            seed=seed,
            delay_model=UniformDelay(0.2, 2.0),
        )
        for t in range(9):
            picks = sorted({(t * 7 + k * 3) % 6 for k in range(3)})
            operations = []
            for resource_index in picks:
                operations.append(acquire((f"r{resource_index}", X)))
                operations.append(Think(0.3))
            system.begin(spec(t + 1, t % 3, *operations), at=0.4 * t)
        system.run_to_quiescence(max_events=200_000)
        assert system.declarations == []
        assert all(r.commits == 1 for r in system.transactions.values())


class TestManualAndPeriodicInitiation:
    def test_manual_initiation_detects(self) -> None:
        system = two_site_system(initiation=DdbManualInitiation())
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations == []  # nobody initiated
        system.simulator.schedule(
            1.0, lambda: system.controller(0).initiate_for(pid(1, 0))
        )
        system.run_to_quiescence()
        assert [d.process for d in system.declarations] == [pid(1, 0)]
        system.assert_soundness()

    def test_manual_initiation_about_healthy_process_is_silent(self) -> None:
        system = two_site_system(initiation=DdbManualInitiation())
        system.begin(spec(1, 0, acquire(("r0", X)), Think(10.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", X))), at=0.5)
        system.run(until=2.0)
        system.controller(0).initiate_for(pid(2, 0))
        system.run_to_quiescence()
        assert system.declarations == []

    def test_periodic_optimized_detects(self) -> None:
        system = two_site_system(
            initiation=DdbPeriodicInitiation(period=2.0, optimized=True, horizon=60.0)
        )
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()

    def test_periodic_naive_detects(self) -> None:
        system = two_site_system(
            initiation=DdbPeriodicInitiation(period=2.0, optimized=False, horizon=60.0)
        )
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()

    def test_invalid_period_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DdbPeriodicInitiation(period=0.0)

    def test_optimized_initiates_fewer_computations(self) -> None:
        # Section 6.7: Q computations (incoming black inter edges) vs one
        # per blocked process.
        def run(optimized: bool) -> int:
            system = ring_deadlock(
                4,
                initiation=DdbPeriodicInitiation(
                    period=3.0, optimized=optimized, horizon=30.0
                ),
            )
            system.run_to_quiescence()
            system.assert_soundness()
            assert system.declarations
            return system.metrics.counter_value("ddb.computations.initiated")

        assert run(True) < run(False)


class TestProbeBookkeeping:
    def test_at_most_one_probe_per_edge_per_computation(self) -> None:
        system = ring_deadlock(4)
        system.run_to_quiescence()
        per_edge: dict[tuple, int] = {}
        for event in system.simulator.tracer.events("ddb.probe.sent"):
            key = (event["tag"], event["edge"])
            per_edge[key] = per_edge.get(key, 0) + 1
        assert per_edge
        assert all(count == 1 for count in per_edge.values())

    def test_probe_carries_edge_identity(self) -> None:
        system = two_site_system()
        cross_deadlock(system)
        system.run_to_quiescence()
        events = system.simulator.tracer.events("ddb.probe.sent")
        assert events
        for event in events:
            edge = event["edge"]
            assert edge.origin.transaction == edge.target.transaction
            assert edge.origin.site != edge.target.site

    def test_stale_probe_not_meaningful(self) -> None:
        # After the winner commits, leftover probes (if any) must find the
        # edge gone.  Covered implicitly by churn tests; here we check that
        # received-but-not-meaningful probes are traced as such somewhere
        # across a contention scenario.
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r1", X)), Think(0.2)), at=0.0)
        system.begin(spec(2, 1, acquire(("r1", X))), at=0.1)
        system.run_to_quiescence()
        assert system.declarations == []
