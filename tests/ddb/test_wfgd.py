"""Tests for the WFGD computation lifted to the DDB model."""

from __future__ import annotations

import pytest

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, acquire

from tests.ddb.helpers import X, cross_deadlock, ring_deadlock, spec, two_site_system


def pid(tid: int, site: int) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


def all_wfgd_paths(system: DdbSystem) -> dict[ProcessId, set]:
    merged: dict[ProcessId, set] = {}
    for controller in system.controllers.values():
        for process, paths in controller.wfgd.paths.items():
            merged[process] = set(paths)
    return merged


class TestDdbWfgdOnCycles:
    def test_cross_deadlock_processes_learn_cycle_edges(self) -> None:
        system = two_site_system(wfgd_on_declare=True)
        cross_deadlock(system)
        system.run_to_quiescence()
        system.assert_soundness()
        deadlocked = system.oracle.processes_on_dark_cycles()
        assert deadlocked
        for process in deadlocked:
            controller = system.controllers[process.site]
            expected = system.oracle.permanent_black_edges_from(process)
            assert controller.wfgd.paths_for(process) == expected, process

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_ring_every_process_informed_exactly(self, n: int) -> None:
        system = ring_deadlock(n, wfgd_on_declare=True)
        system.run_to_quiescence()
        system.assert_soundness()
        deadlocked = system.oracle.processes_on_dark_cycles()
        assert len(deadlocked) == 2 * n  # home + agent per transaction
        for process in deadlocked:
            controller = system.controllers[process.site]
            expected = system.oracle.permanent_black_edges_from(process)
            assert controller.wfgd.paths_for(process) == expected, process
        assert system.metrics.counter_value("ddb.wfgd.sent") > 0

    def test_wfgd_disabled_by_default(self) -> None:
        system = two_site_system()
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.metrics.counter_value("ddb.wfgd.sent") == 0
        assert all_wfgd_paths(system) == {}


class TestDdbWfgdTails:
    def test_local_waiter_into_cycle_is_informed(self) -> None:
        # T3 at S0 waits for r0 held by T1's home process, which is on the
        # cross-site cycle: T3's process is deadlocked but never on a
        # cycle, so only WFGD can tell it.
        system = two_site_system(wfgd_on_declare=True)
        cross_deadlock(system)
        system.begin(spec(3, 0, acquire(("r0", X))), at=5.0)
        system.run_to_quiescence()
        system.assert_soundness()
        tail = pid(3, 0)
        controller = system.controller(0)
        expected = system.oracle.permanent_black_edges_from(tail)
        assert expected  # genuinely permanently blocked
        assert controller.wfgd.paths_for(tail) == expected
        declared = {d.process for d in system.declarations}
        assert tail not in declared  # informed, not declaring

    def test_remote_waiter_into_cycle_is_informed(self) -> None:
        # T3 homed at S1 remote-hops for r0 (held inside the cycle at S0):
        # the WFGD info must cross controllers to reach T3's home process.
        system = two_site_system(wfgd_on_declare=True)
        cross_deadlock(system)
        system.begin(spec(3, 1, acquire(("r0", X))), at=5.0)
        system.run_to_quiescence()
        system.assert_soundness()
        home = pid(3, 1)
        agent = pid(3, 0)
        expected_home = system.oracle.permanent_black_edges_from(home)
        expected_agent = system.oracle.permanent_black_edges_from(agent)
        assert expected_home and expected_agent
        assert system.controller(1).wfgd.paths_for(home) == expected_home
        assert system.controller(0).wfgd.paths_for(agent) == expected_agent

    def test_late_attachment_is_informed(self) -> None:
        # The tail arrives long after detection and WFGD completed; the
        # persistent-send rule must still inform it.
        system = two_site_system(wfgd_on_declare=True)
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.begin(spec(3, 0, acquire(("r0", X))), at=system.now + 50.0)
        system.run_to_quiescence()
        tail = pid(3, 0)
        expected = system.oracle.permanent_black_edges_from(tail)
        assert expected
        assert system.controller(0).wfgd.paths_for(tail) == expected
