"""Unit tests for the read/write lock manager."""

from __future__ import annotations

import pytest

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.locks import LockMode, ResourceLock, compatible
from repro.errors import ProtocolError

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def p(tid: int, site: int = 0) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


def lock() -> ResourceLock:
    return ResourceLock(ResourceId("r"))


class TestCompatibility:
    def test_matrix(self) -> None:
        assert compatible(S, S)
        assert not compatible(S, X)
        assert not compatible(X, S)
        assert not compatible(X, X)


class TestGranting:
    def test_first_request_granted(self) -> None:
        resource = lock()
        assert resource.request(p(1), X)
        assert resource.holders == {p(1): X}

    def test_shared_requests_coexist(self) -> None:
        resource = lock()
        assert resource.request(p(1), S)
        assert resource.request(p(2), S)
        assert set(resource.holders) == {p(1), p(2)}

    def test_exclusive_blocks_second(self) -> None:
        resource = lock()
        assert resource.request(p(1), X)
        assert not resource.request(p(2), X)
        assert not resource.request(p(3), S)
        assert len(resource.waiters) == 2

    def test_grant_any_compatible_jumps_queue(self) -> None:
        # S holder, X waiter, then a new S request: granted immediately
        # (grant-any-compatible semantics; the X request keeps waiting).
        resource = lock()
        resource.request(p(1), S)
        assert not resource.request(p(2), X)
        assert resource.request(p(3), S)
        assert set(resource.holders) == {p(1), p(3)}

    def test_rerequest_held_mode_is_noop_grant(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        assert resource.request(p(1), X)
        assert resource.request(p(1), S)  # weaker: trivially held

    def test_overlapping_wait_rejected(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        with pytest.raises(ProtocolError):
            resource.request(p(2), S)


class TestUpgrades:
    def test_sole_holder_upgrades_immediately(self) -> None:
        resource = lock()
        resource.request(p(1), S)
        assert resource.request(p(1), X)
        assert resource.holders[p(1)] is X

    def test_upgrade_waits_for_other_shared_holders(self) -> None:
        resource = lock()
        resource.request(p(1), S)
        resource.request(p(2), S)
        assert not resource.request(p(1), X)
        assert resource.waits_for(p(1)) == {p(2)}

    def test_upgrade_granted_when_other_holder_releases(self) -> None:
        resource = lock()
        resource.request(p(1), S)
        resource.request(p(2), S)
        resource.request(p(1), X)
        granted = resource.release(p(2))
        assert [g.process for g in granted] == [p(1)]
        assert resource.holders[p(1)] is X

    def test_two_upgraders_deadlock_shape(self) -> None:
        # Both hold S, both want X: each waits for the other -- the classic
        # upgrade deadlock the detector must find.
        resource = lock()
        resource.request(p(1), S)
        resource.request(p(2), S)
        assert not resource.request(p(1), X)
        assert not resource.request(p(2), X)
        assert resource.waits_for(p(1)) == {p(2)}
        assert resource.waits_for(p(2)) == {p(1)}


class TestRelease:
    def test_release_grants_waiter(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        granted = resource.release(p(1))
        assert [g.process for g in granted] == [p(2)]
        assert resource.holders == {p(2): X}

    def test_release_grants_all_compatible_waiters(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), S)
        resource.request(p(3), S)
        granted = resource.release(p(1))
        assert {g.process for g in granted} == {p(2), p(3)}

    def test_release_unheld_rejected(self) -> None:
        with pytest.raises(ProtocolError):
            lock().release(p(1))

    def test_release_stops_at_incompatible(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        resource.request(p(3), S)
        granted = resource.release(p(1))
        # X (p2) granted; S (p3) incompatible with the new X holder.
        assert [g.process for g in granted] == [p(2)]
        assert len(resource.waiters) == 1


class TestCancel:
    def test_cancel_removes_waiter(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        assert resource.cancel(p(2))
        assert resource.waiters == []

    def test_cancel_absent_returns_false(self) -> None:
        assert not lock().cancel(p(1))

    def test_release_or_cancel_handles_both(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        resource.release_or_cancel(p(2))  # waiter
        granted = resource.release_or_cancel(p(1))  # holder
        assert granted == []
        assert resource.idle


class TestWaitForDerivation:
    def test_waits_for_incompatible_holders_only(self) -> None:
        resource = lock()
        resource.request(p(1), S)
        resource.request(p(2), S)
        resource.request(p(3), X)
        assert resource.waits_for(p(3)) == {p(1), p(2)}

    def test_non_waiter_waits_for_nothing(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        assert resource.waits_for(p(1)) == set()
        assert resource.waits_for(p(9)) == set()

    def test_all_wait_edges(self) -> None:
        resource = lock()
        resource.request(p(1), X)
        resource.request(p(2), X)
        resource.request(p(3), X)
        assert resource.all_wait_edges() == {(p(2), p(1)), (p(3), p(1))}
