"""Integration tests for transaction execution: local/remote acquisition,
commit, lock release, think times -- the non-deadlocking paths."""

from __future__ import annotations

import pytest

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.system import DdbSystem, uniform_resources
from repro.ddb.transaction import Think, TransactionStatus, acquire
from repro.errors import ConfigurationError, ProtocolError

from tests.ddb.helpers import S, X, spec, two_site_system


class TestLocalExecution:
    def test_local_only_transaction_commits(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(2.0)), at=0.0)
        system.run_to_quiescence()
        record = system.transactions[TransactionId(1)]
        assert record.commits == 1
        assert record.committed_at == pytest.approx(2.0)

    def test_empty_transaction_commits_immediately(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0), at=0.0)
        system.run_to_quiescence()
        assert system.transactions[TransactionId(1)].commits == 1

    def test_locks_released_at_commit(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(1.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", X))), at=0.1)
        system.run_to_quiescence()
        # T2 waited for T1's commit, then got the lock and committed too.
        assert system.transactions[TransactionId(2)].commits == 1
        assert system.transactions[TransactionId(2)].committed_at >= 1.0

    def test_shared_locks_do_not_block(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", S)), Think(5.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", S))), at=0.1)
        system.run(until=1.0)
        assert system.transactions[TransactionId(2)].commits == 1

    def test_no_edges_left_after_all_commits(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(1.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", X))), at=0.1)
        system.run_to_quiescence()
        assert len(system.oracle) == 0


class TestRemoteExecution:
    def test_remote_acquire_commits(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r1", X))), at=0.0)
        system.run_to_quiescence()
        record = system.transactions[TransactionId(1)]
        assert record.commits == 1
        # Round trip: request to S1 (1.0) + grant back (1.0).
        assert record.committed_at == pytest.approx(2.0)

    def test_remote_agent_releases_on_commit(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r1", X)), Think(1.0)), at=0.0)
        system.begin(spec(2, 1, acquire(("r1", X))), at=0.5)
        system.run_to_quiescence()
        assert system.transactions[TransactionId(2)].commits == 1
        assert len(system.oracle) == 0
        # Agent state cleaned up.
        assert system.controller(1).agents == {}

    def test_mixed_local_and_remote_acquire(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X), ("r1", X)), Think(1.0)), at=0.0)
        system.run_to_quiescence()
        assert system.transactions[TransactionId(1)].commits == 1

    def test_remote_wait_blocks_home(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 1, acquire(("r1", X)), Think(10.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r1", X))), at=1.0)
        system.run(until=5.0)
        execution = system.controller(0).executions[TransactionId(2)]
        assert execution.status is TransactionStatus.WAITING
        system.run_to_quiescence()
        assert system.transactions[TransactionId(2)].commits == 1

    def test_sequential_remote_ops_to_same_site(self) -> None:
        resources = {
            ResourceId("a"): SiteId(1),
            ResourceId("b"): SiteId(1),
        }
        system = DdbSystem(n_sites=2, resources=resources)
        system.begin(
            spec(1, 0, acquire(("a", X)), Think(0.5), acquire(("b", X))), at=0.0
        )
        system.run_to_quiescence()
        assert system.transactions[TransactionId(1)].commits == 1
        assert system.controller(1).agents == {}


class TestValidation:
    def test_unknown_resource_rejected(self) -> None:
        system = two_site_system()
        with pytest.raises(ConfigurationError):
            system.begin(spec(1, 0, acquire(("nope", X))))

    def test_duplicate_tid_rejected(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0), at=0.0)
        with pytest.raises(ProtocolError):
            system.begin(spec(1, 0))

    def test_wrong_home_rejected(self) -> None:
        system = two_site_system()
        with pytest.raises(ProtocolError):
            system.controller(1).begin(spec(1, 0), incarnation=1)

    def test_invalid_resource_home_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DdbSystem(n_sites=2, resources={ResourceId("r"): SiteId(9)})

    def test_zero_sites_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DdbSystem(n_sites=0, resources=4)

    def test_uniform_resources_round_robin(self) -> None:
        catalogue = uniform_resources(5, 2)
        assert catalogue[ResourceId("r0")] == SiteId(0)
        assert catalogue[ResourceId("r1")] == SiteId(1)
        assert catalogue[ResourceId("r4")] == SiteId(0)


class TestResponseTimes:
    def test_response_time_histogram_recorded(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(3.0)), at=2.0)
        system.run_to_quiescence()
        histogram = system.metrics.histogram("ddb.txn.response_time")
        assert histogram.count == 1
        assert histogram.quantile(0.5) == pytest.approx(3.0)
