"""Tests for the DDB delayed-T initiation rule (section 4.3 lifted)."""

from __future__ import annotations

import pytest

from repro.ddb.initiation import DdbDelayedInitiation
from repro.ddb.transaction import Think, acquire
from repro.errors import ConfigurationError

from tests.ddb.helpers import X, cross_deadlock, ring_deadlock, spec, two_site_system


class TestDdbDelayedInitiation:
    def test_negative_t_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DdbDelayedInitiation(timeout=-1.0)

    def test_short_wait_avoids_computation(self) -> None:
        # T2 waits ~3 time units for T1's commit -- well under T=20, so no
        # probe computation ever starts.
        system = two_site_system(initiation=DdbDelayedInitiation(timeout=20.0))
        system.begin(spec(1, 0, acquire(("r0", X)), Think(2.0)), at=0.0)
        system.begin(spec(2, 0, acquire(("r0", X))), at=0.5)
        system.run_to_quiescence()
        assert all(r.commits == 1 for r in system.transactions.values())
        assert system.metrics.counter_value("ddb.computations.initiated") == 0
        assert system.metrics.counter_value("ddb.computations.avoided") >= 1
        assert system.metrics.counter_value("ddb.probes.sent") == 0

    def test_persistent_deadlock_detected_after_t(self) -> None:
        timeout = 6.0
        system = two_site_system(initiation=DdbDelayedInitiation(timeout=timeout))
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()
        # Detection latency is bounded below by T.
        histogram = system.metrics.histograms.get("ddb.detection.latency")
        assert histogram is not None and histogram.count >= 1
        assert histogram.quantile(0.0) >= timeout

    @pytest.mark.parametrize("n", [3, 5])
    def test_ring_detected_with_delay(self, n: int) -> None:
        system = ring_deadlock(n, initiation=DdbDelayedInitiation(timeout=4.0))
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()

    def test_fewer_computations_than_immediate_under_churn(self) -> None:
        def run(initiation=None) -> int:
            system = two_site_system(
                **({"initiation": initiation} if initiation else {})
            )
            # Waves of short-lived contention that always resolves.
            for wave in range(6):
                base = 25.0 * wave
                system.begin(
                    spec(2 * wave + 1, 0, acquire(("r0", X)), Think(2.0)),
                    at=base,
                )
                system.begin(
                    spec(2 * wave + 2, 0, acquire(("r0", X))), at=base + 0.5
                )
            system.run_to_quiescence()
            assert all(r.commits == 1 for r in system.transactions.values())
            return system.metrics.counter_value("ddb.computations.initiated")

        immediate = run()
        delayed = run(DdbDelayedInitiation(timeout=15.0))
        assert delayed == 0
        assert immediate > 0
