"""Scope of the section 6 graph model: the idle-holder limitation.

The section 6 wait-for graph has intra-controller edges (requester ->
local holder) and inter-controller edges (waiting process -> its remote
agent).  No edge ever leaves a process that merely *holds* resources while
its transaction waits elsewhere (an "idle holder").  Consequently a
transaction-level deadlock threaded through idle holders has NO cycle in
the process-level graph -- it is outside the model, and the probe
computation (correctly, per its own definitions) stays silent.

This is a property of the paper's model, not a bug in this implementation:
section 6.7's characterisation of cycles ("any cycle ... must include an
inter-controller edge directed towards a constituent process") only covers
deadlocks whose holders are the transactions' current waiting processes.
The authors' follow-up resource-model formulation (their reference [1],
which became Chandy/Misra/Haas, TOCS 1983) models a transaction as a
single logical process spanning sites, closing this gap.

These tests pin the boundary from both sides:

* inside the representable class (home acquisitions + single remote hop,
  which :class:`~repro.workloads.transactions.TransactionWorkload`
  enforces), every transaction deadlock IS a process-level dark cycle and
  is detected;
* one step outside (two remote hops), a real transaction deadlock exists
  with no process-level dark cycle, and nothing is declared.
"""

from __future__ import annotations

from repro._ids import ProcessId, ResourceId, SiteId, TransactionId
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, TransactionStatus, acquire

from tests.ddb.helpers import X, spec


def build_idle_holder_deadlock() -> DdbSystem:
    """T1 and T2 (homes S0) each grab one remote resource, then want the
    other's: a genuine transaction-level deadlock through idle holders."""
    resources = {ResourceId("a"): SiteId(1), ResourceId("b"): SiteId(2)}
    system = DdbSystem(n_sites=3, resources=resources)
    system.begin(
        spec(1, 0, acquire(("a", X)), Think(3.0), acquire(("b", X))), at=0.0
    )
    system.begin(
        spec(2, 0, acquire(("b", X)), Think(3.0), acquire(("a", X))), at=0.1
    )
    return system


class TestOutsideTheModel:
    def test_transaction_deadlock_without_process_cycle(self) -> None:
        system = build_idle_holder_deadlock()
        system.run_to_quiescence(max_events=100_000)
        # Both transactions are permanently stuck ...
        for tid in (1, 2):
            execution = system.controller(0).executions[TransactionId(tid)]
            assert execution.status is TransactionStatus.WAITING
        # ... the agents holding the contended resources are idle holders
        # with no outgoing edges ...
        t1_holder = ProcessId(transaction=TransactionId(1), site=SiteId(1))
        t2_holder = ProcessId(transaction=TransactionId(2), site=SiteId(2))
        assert system.oracle.successors(t1_holder) == set()
        assert system.oracle.successors(t2_holder) == set()
        # ... so the process-level graph is acyclic and nothing declares.
        assert system.oracle.processes_on_dark_cycles() == set()
        assert system.declarations == []

    def test_probe_computation_is_not_unsound_outside_the_model(self) -> None:
        # Even outside its completeness scope, the algorithm never lies:
        # no declaration means no unsound declaration.
        system = build_idle_holder_deadlock()
        system.run_to_quiescence(max_events=100_000)
        system.assert_soundness()


class TestInsideTheModel:
    def test_single_hop_version_is_detected(self) -> None:
        # The same contention, reshaped into the representable class:
        # each transaction holds its HOME resource and remote-hops for the
        # other's.  Now every holder is a waiting home process, the
        # process graph has the cycle, and detection fires.
        resources = {ResourceId("a"): SiteId(0), ResourceId("b"): SiteId(1)}
        system = DdbSystem(n_sites=2, resources=resources)
        system.begin(
            spec(1, 0, acquire(("a", X)), Think(3.0), acquire(("b", X))), at=0.0
        )
        system.begin(
            spec(2, 1, acquire(("b", X)), Think(3.0), acquire(("a", X))), at=0.1
        )
        system.run_to_quiescence(max_events=100_000)
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()
