"""Shared builders for DDB tests."""

from __future__ import annotations

from repro._ids import ResourceId, SiteId, TransactionId
from repro.ddb.locks import LockMode
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, TransactionSpec, acquire

X = LockMode.EXCLUSIVE
S = LockMode.SHARED


def two_site_system(**kwargs) -> DdbSystem:
    """Two sites; r0 homed at S0, r1 homed at S1."""
    resources = {ResourceId("r0"): SiteId(0), ResourceId("r1"): SiteId(1)}
    return DdbSystem(n_sites=2, resources=resources, **kwargs)


def spec(tid: int, home: int, *operations) -> TransactionSpec:
    return TransactionSpec(
        tid=TransactionId(tid), home=SiteId(home), operations=tuple(operations)
    )


def cross_deadlock(system: DdbSystem, think: float = 1.0) -> None:
    """Admit the canonical two-transaction cross-site deadlock.

    T1 (home S0) takes r0 then wants r1; T2 (home S1) takes r1 then wants
    r0.  With ``think`` > message delay both second acquisitions collide.
    """
    system.begin(
        spec(1, 0, acquire(("r0", X)), Think(think), acquire(("r1", X))), at=0.0
    )
    system.begin(
        spec(2, 1, acquire(("r1", X)), Think(think), acquire(("r0", X))), at=0.1
    )


def ring_deadlock(n_sites: int, **kwargs) -> DdbSystem:
    """N transactions and N sites in a ring: T_i holds r_i (home S_i) and
    then requests r_{i+1 mod N}.  Deadlocks with one process pair per site.
    """
    resources = {ResourceId(f"r{i}"): SiteId(i) for i in range(n_sites)}
    system = DdbSystem(n_sites=n_sites, resources=resources, **kwargs)
    for i in range(n_sites):
        system.begin(
            spec(
                i + 1,
                i,
                acquire((f"r{i}", X)),
                Think(1.0),
                acquire((f"r{(i + 1) % n_sites}", X)),
            ),
            at=0.05 * i,
        )
    return system
