"""DDB-level property tests: the theorems over random configurations.

The DDB counterpart of tests/basic/test_properties.py: hypothesis draws
system shapes (sites, resources, contention profiles, delay models, seeds)
and the paper's guarantees must hold on every sampled history.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddb.initiation import (
    DdbDelayedInitiation,
    DdbImmediateInitiation,
    DdbPeriodicInitiation,
)
from repro.ddb.resolution import (
    AbortAboutTransaction,
    AbortLowestTransactionInCycle,
    NoResolution,
)
from repro.ddb.system import DdbSystem
from repro.sim.network import ExponentialDelay, FixedDelay, UniformDelay
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

DELAYS = st.sampled_from(
    [FixedDelay(1.0), UniformDelay(0.3, 2.0), ExponentialDelay(mean=1.0)]
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_sites=st.integers(min_value=2, max_value=4),
    n_resources=st.integers(min_value=3, max_value=8),
    delay_model=DELAYS,
    read_ratio=st.floats(min_value=0.0, max_value=0.6),
    hotspot=st.floats(min_value=0.0, max_value=0.8),
)
@settings(max_examples=25, deadline=None)
def test_detection_only_soundness_and_completeness(
    seed: int,
    n_sites: int,
    n_resources: int,
    delay_model,
    read_ratio: float,
    hotspot: float,
) -> None:
    system = DdbSystem(
        n_sites=n_sites,
        resources=n_resources,
        seed=seed,
        delay_model=delay_model,
        resolution=NoResolution(),
        strict=False,
    )
    workload = TransactionWorkload(
        system,
        WorkloadParams(
            n_transactions=8,
            remote_probability=0.9,
            read_ratio=read_ratio,
            hotspot_probability=hotspot,
            hotspot_size=2,
            mean_think=0.8,
            arrival_window=8.0,
            restart_aborted=False,
        ),
    )
    workload.start()
    system.run_to_quiescence(max_events=1_000_000)
    assert system.soundness_violations == []
    complete, undetected = system.completeness_report()
    assert complete, undetected


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    resolution=st.sampled_from([AbortAboutTransaction, AbortLowestTransactionInCycle]),
)
@settings(max_examples=15, deadline=None)
def test_resolution_liveness(seed: int, resolution) -> None:
    system = DdbSystem(
        n_sites=3,
        resources=6,
        seed=seed,
        resolution=resolution(),
        strict=False,
    )
    workload = TransactionWorkload(
        system,
        WorkloadParams(
            n_transactions=8,
            remote_probability=1.0,
            read_ratio=0.0,
            hotspot_probability=0.5,
            hotspot_size=2,
            mean_think=0.8,
            arrival_window=6.0,
            restart_horizon=5000.0,
        ),
    )
    workload.start()
    system.run_to_quiescence(max_events=2_000_000)
    assert system.soundness_violations == []
    system.assert_no_deadlock_remains()
    assert workload.stats.commits == 8


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    initiation=st.sampled_from(
        [
            lambda: DdbImmediateInitiation(),
            lambda: DdbDelayedInitiation(timeout=3.0),
            lambda: DdbPeriodicInitiation(period=3.0, optimized=True, horizon=300.0),
            lambda: DdbPeriodicInitiation(period=3.0, optimized=False, horizon=300.0),
        ]
    ),
)
@settings(max_examples=15, deadline=None)
def test_every_initiation_policy_is_sound_and_complete(seed: int, initiation) -> None:
    system = DdbSystem(
        n_sites=3,
        resources=6,
        seed=seed,
        initiation=initiation(),
        resolution=NoResolution(),
        strict=False,
    )
    workload = TransactionWorkload(
        system,
        WorkloadParams(
            n_transactions=8,
            remote_probability=1.0,
            read_ratio=0.2,
            hotspot_probability=0.5,
            hotspot_size=2,
            mean_think=0.8,
            arrival_window=6.0,
            restart_aborted=False,
        ),
    )
    workload.start()
    system.run_to_quiescence(max_events=1_000_000)
    assert system.soundness_violations == []
    complete, undetected = system.completeness_report()
    assert complete, undetected


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_ddb_wfgd_exactness_on_random_deadlocks(seed: int) -> None:
    system = DdbSystem(
        n_sites=3,
        resources=6,
        seed=seed,
        resolution=NoResolution(),
        strict=False,
        wfgd_on_declare=True,
    )
    workload = TransactionWorkload(
        system,
        WorkloadParams(
            n_transactions=8,
            remote_probability=1.0,
            read_ratio=0.0,
            hotspot_probability=0.5,
            hotspot_size=2,
            mean_think=0.8,
            arrival_window=6.0,
            restart_aborted=False,
        ),
    )
    workload.start()
    system.run_to_quiescence(max_events=1_000_000)
    assert system.soundness_violations == []
    for process in system.oracle.processes_on_dark_cycles():
        controller = system.controllers[process.site]
        expected = system.oracle.permanent_black_edges_from(process)
        assert controller.wfgd.paths_for(process) == expected
