"""Unit tests for the DDB wait-for graph and axioms G1-G6."""

from __future__ import annotations

import pytest

from repro._ids import ProcessId, SiteId, TransactionId
from repro.basic.graph import EdgeColor
from repro.ddb.graph import DdbWaitForGraph
from repro.errors import AxiomViolation


def p(tid: int, site: int) -> ProcessId:
    return ProcessId(transaction=TransactionId(tid), site=SiteId(site))


class TestIntraEdges:
    def test_intra_edge_is_black(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_intra_edge(p(1, 0), p(2, 0))
        assert graph.color(p(1, 0), p(2, 0)) is EdgeColor.BLACK

    def test_intra_edge_must_stay_on_one_site(self) -> None:
        with pytest.raises(AxiomViolation):
            DdbWaitForGraph().add_intra_edge(p(1, 0), p(2, 1))

    def test_duplicate_intra_edge_rejected(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_intra_edge(p(1, 0), p(2, 0))
        with pytest.raises(AxiomViolation):
            graph.add_intra_edge(p(1, 0), p(2, 0))

    def test_self_edge_rejected(self) -> None:
        with pytest.raises(AxiomViolation):
            DdbWaitForGraph().add_intra_edge(p(1, 0), p(1, 0))

    def test_g2_remove_requires_target_active(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_intra_edge(p(1, 0), p(2, 0))
        graph.add_intra_edge(p(2, 0), p(3, 0))
        with pytest.raises(AxiomViolation):
            graph.remove_intra_edge(p(1, 0), p(2, 0))
        graph.remove_intra_edge(p(2, 0), p(3, 0))  # p3 active: fine
        graph.remove_intra_edge(p(1, 0), p(2, 0))  # now p2 active
        assert len(graph) == 0

    def test_force_remove_ignores_g2(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_intra_edge(p(1, 0), p(2, 0))
        graph.add_intra_edge(p(2, 0), p(3, 0))
        assert graph.force_remove_intra_edge(p(1, 0), p(2, 0))
        assert not graph.force_remove_intra_edge(p(1, 0), p(2, 0))

    def test_remove_missing_intra_edge_rejected(self) -> None:
        with pytest.raises(AxiomViolation):
            DdbWaitForGraph().remove_intra_edge(p(1, 0), p(2, 0))


class TestInterEdges:
    def test_lifecycle(self) -> None:
        graph = DdbWaitForGraph()
        a, b = p(1, 0), p(1, 1)
        graph.add_inter_edge(a, b, serial=7)
        assert graph.color(a, b) is EdgeColor.GREY
        assert graph.blacken_inter_edge(a, b, serial=7)
        assert graph.color(a, b) is EdgeColor.BLACK
        assert graph.whiten_inter_edge(a, b, serial=7)
        assert graph.color(a, b) is EdgeColor.WHITE
        assert graph.delete_inter_edge(a, b, serial=7)
        assert graph.color(a, b) is None

    def test_inter_edge_must_stay_in_one_transaction(self) -> None:
        with pytest.raises(AxiomViolation):
            DdbWaitForGraph().add_inter_edge(p(1, 0), p(2, 1), serial=1)

    def test_inter_edge_must_cross_sites(self) -> None:
        with pytest.raises(AxiomViolation):
            DdbWaitForGraph().add_inter_edge(p(1, 0), p(1, 0), serial=1)

    def test_serial_mismatch_is_noop(self) -> None:
        graph = DdbWaitForGraph()
        a, b = p(1, 0), p(1, 1)
        graph.add_inter_edge(a, b, serial=7)
        assert not graph.blacken_inter_edge(a, b, serial=8)
        assert graph.color(a, b) is EdgeColor.GREY

    def test_missing_edge_transitions_are_noops(self) -> None:
        graph = DdbWaitForGraph()
        assert not graph.blacken_inter_edge(p(1, 0), p(1, 1), serial=1)
        assert not graph.whiten_inter_edge(p(1, 0), p(1, 1), serial=1)
        assert not graph.delete_inter_edge(p(1, 0), p(1, 1), serial=1)
        assert not graph.force_remove_inter_edge(p(1, 0), p(1, 1))

    def test_g5_whiten_requires_target_active(self) -> None:
        graph = DdbWaitForGraph()
        a, b = p(1, 0), p(1, 1)
        graph.add_inter_edge(a, b, serial=1)
        graph.blacken_inter_edge(a, b, serial=1)
        graph.add_intra_edge(b, p(2, 1))
        with pytest.raises(AxiomViolation):
            graph.whiten_inter_edge(a, b, serial=1)

    def test_out_of_order_transitions_rejected(self) -> None:
        graph = DdbWaitForGraph()
        a, b = p(1, 0), p(1, 1)
        graph.add_inter_edge(a, b, serial=1)
        with pytest.raises(AxiomViolation):
            graph.whiten_inter_edge(a, b, serial=1)  # grey -> white skips black
        with pytest.raises(AxiomViolation):
            graph.delete_inter_edge(a, b, serial=1)  # grey -> deleted

    def test_force_remove_works_in_any_state(self) -> None:
        graph = DdbWaitForGraph()
        a, b = p(1, 0), p(1, 1)
        graph.add_inter_edge(a, b, serial=1)
        assert graph.force_remove_inter_edge(a, b)
        assert graph.color(a, b) is None


class TestCycles:
    def build_cross_site_cycle(self) -> DdbWaitForGraph:
        """(T1,S0) -inter-> (T1,S1) -intra-> (T2,S1) -inter-> (T2,S0)
        -intra-> (T1,S0): the canonical two-site, two-transaction cycle."""
        graph = DdbWaitForGraph()
        graph.add_inter_edge(p(1, 0), p(1, 1), serial=1)
        graph.blacken_inter_edge(p(1, 0), p(1, 1), serial=1)
        graph.add_intra_edge(p(1, 1), p(2, 1))
        graph.add_inter_edge(p(2, 1), p(2, 0), serial=2)
        graph.blacken_inter_edge(p(2, 1), p(2, 0), serial=2)
        graph.add_intra_edge(p(2, 0), p(1, 0))
        return graph

    def test_cross_site_cycle_detected(self) -> None:
        graph = self.build_cross_site_cycle()
        for process in (p(1, 0), p(1, 1), p(2, 1), p(2, 0)):
            assert graph.is_on_dark_cycle(process)
            assert graph.is_on_black_cycle(process)

    def test_grey_edge_makes_cycle_dark_not_black(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_inter_edge(p(1, 0), p(1, 1), serial=1)  # grey
        graph.add_intra_edge(p(1, 1), p(2, 1))
        graph.add_inter_edge(p(2, 1), p(2, 0), serial=2)
        graph.blacken_inter_edge(p(2, 1), p(2, 0), serial=2)
        graph.add_intra_edge(p(2, 0), p(1, 0))
        assert graph.is_on_dark_cycle(p(1, 0))
        assert not graph.is_on_black_cycle(p(1, 0))

    def test_white_edge_breaks_darkness(self) -> None:
        graph = self.build_cross_site_cycle()
        # Whitening requires the target active; drop the intra edge first.
        graph.force_remove_intra_edge(p(1, 1), p(2, 1))
        graph.whiten_inter_edge(p(1, 0), p(1, 1), serial=1)
        assert not graph.is_on_dark_cycle(p(1, 0))

    def test_local_intra_cycle(self) -> None:
        graph = DdbWaitForGraph()
        graph.add_intra_edge(p(1, 0), p(2, 0))
        graph.add_intra_edge(p(2, 0), p(1, 0))
        assert graph.is_on_black_cycle(p(1, 0))

    def test_deadlocked_transactions(self) -> None:
        graph = self.build_cross_site_cycle()
        assert graph.deadlocked_transactions() == {1, 2}

    def test_processes_enumeration(self) -> None:
        graph = self.build_cross_site_cycle()
        assert graph.processes() == {p(1, 0), p(1, 1), p(2, 1), p(2, 0)}
        assert graph.processes_on_dark_cycles() == graph.processes()
