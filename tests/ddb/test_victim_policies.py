"""Tests for victim-selection policies."""

from __future__ import annotations

import pytest

from repro._ids import TransactionId
from repro.ddb.resolution import (
    AbortAboutTransaction,
    AbortLowestTransactionInCycle,
    NoResolution,
)
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import TransactionExecution

from tests.ddb.helpers import cross_deadlock, ring_deadlock, two_site_system


def restart_callback(system: DdbSystem):
    def callback(execution: TransactionExecution, aborted: bool) -> None:
        if aborted:
            system.restart(execution.spec.tid, delay=3.0 + 4.0 * int(execution.spec.tid))

    return callback


class TestAbortLowest:
    def test_resolves_cross_deadlock(self) -> None:
        system = two_site_system(resolution=AbortLowestTransactionInCycle())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=200_000)
        system.assert_no_deadlock_remains()
        assert all(r.commits == 1 for r in system.transactions.values())
        assert system.soundness_violations == []

    def test_concurrent_detectors_agree_on_the_victim(self) -> None:
        # Both controllers declare; both demand the SAME victim (min tid),
        # so exactly one transaction is ever aborted.
        system = two_site_system(resolution=AbortLowestTransactionInCycle())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=200_000)
        aborted = {tid for tid, r in system.transactions.items() if r.aborts > 0}
        assert aborted == {TransactionId(1)}
        assert system.metrics.counter_value("ddb.txn.aborted") == 1

    def test_about_policy_may_abort_both(self) -> None:
        # Baseline for contrast: with per-declarer victims, both
        # transactions get aborted in the same episode.
        system = two_site_system(resolution=AbortAboutTransaction())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=200_000)
        assert system.metrics.counter_value("ddb.txn.aborted") == 2

    @pytest.mark.parametrize("n", [3, 5])
    def test_ring_resolves_with_fewer_aborts(self, n: int) -> None:
        lowest = ring_deadlock(n, resolution=AbortLowestTransactionInCycle())
        lowest.finished_callback = restart_callback(lowest)
        lowest.run_to_quiescence(max_events=400_000)
        lowest.assert_no_deadlock_remains()
        assert all(r.commits == 1 for r in lowest.transactions.values())

        about = ring_deadlock(n, resolution=AbortAboutTransaction())
        about.finished_callback = restart_callback(about)
        about.run_to_quiescence(max_events=400_000)
        about.assert_no_deadlock_remains()

        assert lowest.metrics.counter_value(
            "ddb.txn.aborted"
        ) <= about.metrics.counter_value("ddb.txn.aborted")

    def test_no_resolution_is_truly_inert(self) -> None:
        system = two_site_system(resolution=NoResolution())
        cross_deadlock(system)
        system.run_to_quiescence(max_events=100_000)
        assert system.metrics.counter_value("ddb.txn.aborted") == 0
        assert system.oracle.processes_on_dark_cycles()
