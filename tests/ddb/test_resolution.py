"""Tests for victim-abort resolution and transaction restart."""

from __future__ import annotations

import pytest

from repro._ids import ResourceId, SiteId, TransactionId
from repro.ddb.resolution import AbortAboutTransaction, NoResolution
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, TransactionExecution, acquire

from tests.ddb.helpers import X, cross_deadlock, ring_deadlock, spec, two_site_system


def staggered_restart(system: DdbSystem, base: float = 3.0, step: float = 4.0):
    """Restart policy with per-transaction staggered backoff (avoids the
    symmetric-restart livelock)."""

    def callback(execution: TransactionExecution, aborted: bool) -> None:
        if aborted:
            system.restart(execution.spec.tid, delay=base + step * int(execution.spec.tid))

    return callback


class TestVictimAbort:
    def test_deadlock_broken_and_both_commit(self) -> None:
        system = two_site_system(resolution=AbortAboutTransaction())
        system.finished_callback = staggered_restart(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=100_000)
        system.assert_no_deadlock_remains()
        for record in system.transactions.values():
            assert record.commits == 1
        assert system.metrics.counter_value("ddb.txn.aborted") >= 1
        assert system.soundness_violations == []

    @pytest.mark.parametrize("n", [3, 5])
    def test_ring_deadlock_resolves(self, n: int) -> None:
        system = ring_deadlock(n, resolution=AbortAboutTransaction())
        system.finished_callback = staggered_restart(system)
        system.run_to_quiescence(max_events=300_000)
        system.assert_no_deadlock_remains()
        assert all(r.commits == 1 for r in system.transactions.values())

    def test_no_resolution_leaves_deadlock(self) -> None:
        system = two_site_system(resolution=NoResolution())
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.oracle.processes_on_dark_cycles()
        assert all(r.commits == 0 for r in system.transactions.values())

    def test_aborted_victims_release_all_locks(self) -> None:
        system = two_site_system(resolution=AbortAboutTransaction())
        # No restart: victims stay dead; survivors must still commit.
        cross_deadlock(system)
        system.run_to_quiescence(max_events=100_000)
        system.assert_no_deadlock_remains()
        commits = sum(r.commits for r in system.transactions.values())
        aborts = sum(r.aborts for r in system.transactions.values())
        assert aborts >= 1
        assert commits + aborts >= 2
        # All lock tables drained or held only by still-running work.
        for controller in system.controllers.values():
            for resource_lock in controller.locks.values():
                assert resource_lock.waiters == []

    def test_stale_declaration_classified_not_violation(self) -> None:
        # Both controllers declare concurrently; the second declaration
        # lands after the first victim broke the cycle.
        system = two_site_system(resolution=AbortAboutTransaction())
        system.finished_callback = staggered_restart(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=100_000)
        assert system.soundness_violations == []
        # Exactly the race described: one sound, one stale declaration.
        sound = [d for d in system.declarations if d.on_black_cycle]
        assert sound
        if len(system.declarations) > len(sound):
            assert system.metrics.counter_value("ddb.declarations.stale") >= 1


class TestRestartLifecycle:
    def test_incarnations_increment(self) -> None:
        system = two_site_system(resolution=AbortAboutTransaction())
        system.finished_callback = staggered_restart(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=100_000)
        aborted = [r for r in system.transactions.values() if r.aborts > 0]
        assert aborted
        for record in aborted:
            assert record.incarnation == record.aborts + record.commits

    def test_stale_messages_ignored_after_restart(self) -> None:
        # The first victim restarts almost immediately (0.5 after its
        # abort), racing the abort's own in-flight messages and any stale
        # probes; the stagger (4.0 per tid) prevents the symmetric-restart
        # livelock while keeping the races.
        system = two_site_system(resolution=AbortAboutTransaction())
        system.finished_callback = staggered_restart(system, base=0.5, step=4.0)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=200_000)
        system.assert_no_deadlock_remains()
        assert system.soundness_violations == []
        # All transactions eventually commit despite tight restarts.
        assert all(r.commits == 1 for r in system.transactions.values())

    def test_manual_abort_of_running_transaction(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X)), Think(10.0)), at=0.0)
        system.run(until=1.0)
        system.controller(0).abort_transaction(TransactionId(1))
        system.run_to_quiescence()
        record = system.transactions[TransactionId(1)]
        assert record.aborts == 1
        assert record.commits == 0
        # The lock was released by the abort.
        assert not system.controller(0).locks[ResourceId("r0")].holders

    def test_abort_of_finished_transaction_is_noop(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r0", X))), at=0.0)
        system.run_to_quiescence()
        system.controller(0).abort_transaction(TransactionId(1))
        record = system.transactions[TransactionId(1)]
        assert record.commits == 1
        assert record.aborts == 0

    def test_abort_with_remote_agent_cleans_remote_state(self) -> None:
        system = two_site_system()
        system.begin(spec(1, 0, acquire(("r1", X)), Think(50.0)), at=0.0)
        system.run(until=5.0)  # agent at S1 holds r1
        assert system.controller(1).agents
        system.controller(0).abort_transaction(TransactionId(1))
        system.run_to_quiescence()
        assert system.controller(1).agents == {}
        assert not system.controller(1).locks[ResourceId("r1")].holders


class TestThroughputUnderContention:
    def test_contended_workload_all_commit_eventually(self) -> None:
        # Six transactions over two exclusive resources in opposite orders;
        # repeated deadlocks must all resolve and everything commits.
        system = two_site_system(resolution=AbortAboutTransaction(), seed=7)
        backoff = system.simulator.rng.stream("test.backoff")

        def restart(execution: TransactionExecution, aborted: bool) -> None:
            if aborted:
                system.restart(execution.spec.tid, delay=1.0 + 6.0 * backoff.random())

        system.finished_callback = restart
        for i in range(6):
            first, second = ("r0", "r1") if i % 2 == 0 else ("r1", "r0")
            system.begin(
                spec(i + 1, i % 2, acquire((first, X)), Think(0.5), acquire((second, X))),
                at=0.3 * i,
            )
        system.run_to_quiescence(max_events=500_000)
        system.assert_no_deadlock_remains()
        assert system.soundness_violations == []
        assert all(r.commits == 1 for r in system.transactions.values())
