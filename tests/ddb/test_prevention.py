"""Tests for the wait-die / wound-wait prevention schemes.

The defining property: with a prevention scheme active, **no dark cycle
ever forms** -- the wait-for graph stays acyclic at every instant, so the
paper's detection machinery has nothing to find.  The cost shows up as
prevention aborts of transactions that were never deadlocked.
"""

from __future__ import annotations

import pytest

from repro._ids import TransactionId
from repro.ddb.initiation import DdbManualInitiation
from repro.ddb.prevention import Decision, WaitDie, WoundWait
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import TransactionExecution
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

from tests.ddb.helpers import cross_deadlock, two_site_system


def prevention_system(policy, **kwargs) -> DdbSystem:
    return two_site_system(
        prevention=policy, initiation=DdbManualInitiation(), **kwargs
    )


def restart_callback(system: DdbSystem):
    def callback(execution: TransactionExecution, aborted: bool) -> None:
        if aborted:
            system.restart(execution.spec.tid, delay=4.0 + 3.0 * int(execution.spec.tid))

    return callback


def no_dark_cycle_watcher(system: DdbSystem) -> list:
    """Record any instant at which a dark cycle exists (must stay empty)."""
    sightings: list[float] = []

    def watch(event) -> None:
        if event.category == "ddb.edge.added":
            if system.oracle.is_on_dark_cycle(event["source"]):
                sightings.append(event.time)

    system.simulator.tracer.subscribe(watch)
    return sightings


class TestPolicyDecisions:
    def test_wait_die_matrix(self) -> None:
        from repro._ids import ProcessId, SiteId

        policy = WaitDie()
        requester = ProcessId(TransactionId(1), SiteId(0))
        holder = ProcessId(TransactionId(2), SiteId(0))
        # Older requester (ts 1) vs younger holder (ts 5): wait.
        assert policy.on_conflict(requester, 1, [(holder, 5)]) == (Decision.WAIT, [])
        # Younger requester (ts 5) vs older holder (ts 1): die.
        assert policy.on_conflict(requester, 5, [(holder, 1)]) == (Decision.DIE, [])

    def test_wound_wait_matrix(self) -> None:
        from repro._ids import ProcessId, SiteId

        policy = WoundWait()
        requester = ProcessId(TransactionId(1), SiteId(0))
        holder = ProcessId(TransactionId(2), SiteId(0))
        # Older requester wounds the younger holder and waits.
        decision, wounded = policy.on_conflict(requester, 1, [(holder, 5)])
        assert decision is Decision.WAIT
        assert wounded == [TransactionId(2)]
        # Younger requester simply waits.
        assert policy.on_conflict(requester, 5, [(holder, 1)]) == (Decision.WAIT, [])


@pytest.mark.parametrize("policy_factory", [WaitDie, WoundWait])
class TestPreventionOnTheCanonicalDeadlock:
    def test_no_dark_cycle_ever_forms(self, policy_factory) -> None:
        system = prevention_system(policy_factory())
        sightings = no_dark_cycle_watcher(system)
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=300_000)
        assert sightings == []
        system.assert_no_deadlock_remains()

    def test_everything_commits_without_any_detection(self, policy_factory) -> None:
        system = prevention_system(policy_factory())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=300_000)
        assert all(r.commits == 1 for r in system.transactions.values())
        # Prevention needed no probes at all.
        assert system.metrics.counter_value("ddb.probes.sent") == 0
        assert system.declarations == []

    def test_prevention_aborts_are_counted(self, policy_factory) -> None:
        system = prevention_system(policy_factory())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=300_000)
        deaths = system.metrics.counter_value("ddb.prevention.deaths")
        wounds = system.metrics.counter_value("ddb.prevention.wounds")
        assert deaths + wounds >= 1  # somebody paid the prevention tax


class TestSchemeCharacter:
    def test_wait_die_victim_is_the_younger_requester(self) -> None:
        # T1 admitted first (older).  T2's request against T1's lock dies.
        system = prevention_system(WaitDie())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)  # T1 admitted before T2 => T1 older
        system.run_to_quiescence(max_events=300_000)
        assert system.transactions[TransactionId(2)].aborts >= 1
        assert system.transactions[TransactionId(1)].aborts == 0

    def test_wound_wait_victim_is_the_younger_holder(self) -> None:
        system = prevention_system(WoundWait())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        system.run_to_quiescence(max_events=300_000)
        # The older T1 wounds T2 (the younger holder of r1).
        assert system.transactions[TransactionId(2)].aborts >= 1
        assert system.transactions[TransactionId(1)].aborts == 0

    def test_timestamps_persist_across_restarts(self) -> None:
        system = prevention_system(WaitDie())
        system.finished_callback = restart_callback(system)
        cross_deadlock(system)
        before = {tid: r.timestamp for tid, r in system.transactions.items()}
        system.run_to_quiescence(max_events=300_000)
        after = {tid: r.timestamp for tid, r in system.transactions.items()}
        assert before == after


@pytest.mark.parametrize("policy_factory", [WaitDie, WoundWait])
class TestPreventionUnderRandomWorkloads:
    def test_no_permanent_deadlock_and_live(self, policy_factory) -> None:
        # Under message delays a cycle may exist TRANSIENTLY (the wound or
        # death that breaks it is already in flight); the guarantee is
        # that no cycle persists and the system stays live -- with zero
        # detection traffic.
        system = DdbSystem(
            n_sites=3,
            resources=6,
            seed=11,
            prevention=policy_factory(),
            initiation=DdbManualInitiation(),
        )
        workload = TransactionWorkload(
            system,
            WorkloadParams(
                n_transactions=10,
                remote_probability=1.0,
                read_ratio=0.2,
                hotspot_probability=0.5,
                hotspot_size=2,
                mean_think=0.8,
                arrival_window=6.0,
                restart_horizon=3000.0,
            ),
        )
        workload.start()
        system.run_to_quiescence(max_events=2_000_000)
        system.assert_no_deadlock_remains()
        assert workload.stats.commits == 10
        assert system.metrics.counter_value("ddb.probes.sent") == 0
        assert system.declarations == []

    def test_local_conflicts_never_even_transiently_cycle(self, policy_factory) -> None:
        # With all conflicts at ONE site, wounds/deaths land in zero time
        # (plus one scheduler step), so cycles cannot even form.
        from repro._ids import ResourceId, SiteId

        resources = {ResourceId("a"): SiteId(0), ResourceId("b"): SiteId(0)}
        system = DdbSystem(
            n_sites=1,
            resources=resources,
            seed=3,
            prevention=policy_factory(),
            initiation=DdbManualInitiation(),
        )
        sightings = no_dark_cycle_watcher(system)
        system.finished_callback = restart_callback(system)
        from repro.ddb.transaction import Think, acquire
        from repro.ddb.locks import LockMode
        from tests.ddb.helpers import spec

        X = LockMode.EXCLUSIVE
        system.begin(spec(1, 0, acquire(("a", X)), Think(1.0), acquire(("b", X))), at=0.0)
        system.begin(spec(2, 0, acquire(("b", X)), Think(1.0), acquire(("a", X))), at=0.1)
        system.run_to_quiescence(max_events=300_000)
        assert sightings == []
        assert all(r.commits == 1 for r in system.transactions.values())
