"""Cross-file project rules (RPX008-RPX010) against synthetic trees.

Each test assembles a minimal in-memory project — category registry,
variant registration, protocol package — and checks that the seeded
violation (and only it) is caught with the right rule id.  The final
class ties the static view to runtime: the AST-resolved taxonomies must
equal what ``repro.core.registry`` actually registers.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_project_sources, run_project
from repro.lint.engine import _load_file, iter_python_files
from repro.lint.project import ProjectAnalysis

REPO_ROOT = Path(__file__).parents[2]

CATEGORIES_PATH = "src/repro/sim/categories.py"
CATEGORIES_SRC = '''"""Demo category registry."""
from typing import Final

DEMO_INITIATED: Final = "demo.computation.initiated"
DEMO_PROBE_SENT: Final = "demo.probe.sent"
DEMO_PROBE_RECEIVED: Final = "demo.probe.received"
DEMO_DECLARED: Final = "demo.deadlock.declared"
'''

VARIANT_PATH = "src/repro/core/variants/demo.py"
VARIANT_SRC = '''"""Demo variant registration."""
from repro.core.registry import (
    DetectorVariant,
    MessageTaxonomy,
    VariantCapabilities,
    register,
)
from repro.sim import categories

VARIANT = register(
    DetectorVariant(
        name="demo",
        title="Demo detector",
        capabilities=VariantCapabilities(
            model="basic",
            kind="protocol",
            oracle_criterion="cycle of black edges",
            scenarios=("cycle",),
            taxonomy=MessageTaxonomy(
                initiated=categories.DEMO_INITIATED,
                probe_sent=categories.DEMO_PROBE_SENT,
                probe_received=categories.DEMO_PROBE_RECEIVED,
                declared=categories.DEMO_DECLARED,
                endpoint_keys=("source", "target"),
                edge_keys=("source", "target"),
                declared_by_key="vertex",
            ),
        ),
        build=object,
        conformance=object,
    )
)
'''

MESSAGES_PATH = "src/repro/basic/messages.py"
MESSAGES_SRC = '''"""Demo wire protocol."""
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Probe:
    source: int
    target: int
    tag: int
'''

VERTEX_PATH = "src/repro/basic/vertex.py"
VERTEX_SRC = '''"""Demo handler."""
from repro.basic.messages import Probe
from repro.sim import categories


class Vertex:
    def on_message(self, sender: int, message: Probe) -> None:
        if isinstance(message, Probe):
            self.ctx.trace(
                categories.DEMO_PROBE_RECEIVED,
                source=message.source,
                target=message.target,
                tag=message.tag,
            )
            self._forward(message)

    def _forward(self, probe: Probe) -> None:
        self.ctx.trace(
            categories.DEMO_PROBE_SENT, source=0, target=1, tag=probe.tag
        )
        self.send(1, probe)

    def start(self) -> None:
        self.ctx.trace(categories.DEMO_INITIATED, vertex=0, tag=1)
        self.send(1, Probe(source=0, target=1, tag=1))

    def declare(self) -> None:
        self.ctx.trace(categories.DEMO_DECLARED, vertex=0, tag=1)
'''

CLEAN_PROJECT = [
    (CATEGORIES_PATH, CATEGORIES_SRC),
    (VARIANT_PATH, VARIANT_SRC),
    (MESSAGES_PATH, MESSAGES_SRC),
    (VERTEX_PATH, VERTEX_SRC),
]


def project(**overrides: str) -> list[tuple[str, str]]:
    """The clean project with some files replaced (path -> new source)."""
    files = dict(CLEAN_PROJECT)
    files.update(overrides)
    return list(files.items())


def findings(files: list[tuple[str, str]]) -> list[tuple[str, str, str]]:
    return [
        (d.rule, d.path, d.message) for d in lint_project_sources(files)
    ]


class TestCleanProject:
    def test_no_findings(self) -> None:
        assert findings(CLEAN_PROJECT) == []


class TestTaxonomyConformance:
    def test_undeclared_send_of_non_frozen_class(self) -> None:
        vertex = VERTEX_SRC + (
            "\n\nfrom dataclasses import dataclass\n"
            "@dataclass\n"
            "class Rogue:\n"
            "    x: int\n"
            "    def fire(self) -> None:\n"
            "        self.send(1, Rogue(x=1))\n"
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX008" and "undeclared message send" in msg and "frozen" in msg
            for rule, _, msg in got
        ), got

    def test_send_of_class_outside_messages_module(self) -> None:
        vertex = VERTEX_SRC + (
            "\n\nfrom dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Side:\n"
            "    x: int\n"
            "\n"
            "class Sender:\n"
            "    def on_message(self, sender: int, message: Side) -> None:\n"
            "        if isinstance(message, Side):\n"
            "            self.send(1, Side(x=1))\n"
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX008" and "not declared in repro/basic/messages.py" in msg
            for rule, _, msg in got
        ), got

    def test_dead_taxonomy_entry(self) -> None:
        # remove the only trace of the declared category
        vertex = VERTEX_SRC.replace(
            "        self.ctx.trace(categories.DEMO_DECLARED, vertex=0, tag=1)\n",
            "        pass\n",
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX008"
            and "dead taxonomy entry" in msg
            and "demo.deadlock.declared" in msg
            for rule, _, msg in got
        ), got

    def test_unresolvable_taxonomy_category(self) -> None:
        variant = VARIANT_SRC.replace(
            "declared=categories.DEMO_DECLARED,",
            "declared=categories.NO_SUCH_CATEGORY,",
        )
        got = findings(project(**{VARIANT_PATH: variant}))
        assert any(
            rule == "RPX008" and "does not resolve" in msg for rule, _, msg in got
        ), got

    def test_trace_missing_promised_detail_keys(self) -> None:
        vertex = VERTEX_SRC.replace(
            "            categories.DEMO_PROBE_SENT, source=0, target=1, tag=probe.tag\n",
            "            categories.DEMO_PROBE_SENT, source=0\n",
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX008" and "missing detail key(s) tag, target" in msg
            for rule, _, msg in got
        ), got

    def test_dead_message_declaration(self) -> None:
        messages = MESSAGES_SRC + (
            "\n\n@dataclass(frozen=True, slots=True)\n"
            "class Unused:\n"
            "    x: int\n"
        )
        got = findings(project(**{MESSAGES_PATH: messages}))
        assert any(
            rule == "RPX008" and "dead message declaration" in msg and "Unused" in msg
            for rule, _, msg in got
        ), got

    def test_sent_but_never_dispatched(self) -> None:
        vertex = VERTEX_SRC.replace("if isinstance(message, Probe):\n", "if True:\n")
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX008" and "no handler dispatches" in msg
            for rule, _, msg in got
        ), got


class TestMessageImmutability:
    def test_mutating_annotated_parameter(self) -> None:
        vertex = VERTEX_SRC.replace(
            "        self.send(1, probe)\n",
            "        probe.tag = 99\n        self.send(1, probe)\n",
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX009" and "field 'tag' of frozen message 'Probe'" in msg
            for rule, _, msg in got
        ), got

    def test_mutating_stored_reference(self) -> None:
        vertex = VERTEX_SRC + (
            "\n\nclass Holder:\n"
            "    def __init__(self) -> None:\n"
            "        self.last = Probe(source=0, target=1, tag=1)\n"
            "    def poke(self) -> None:\n"
            "        self.last.tag = 7\n"
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX009" and "'Probe'" in msg for rule, _, msg in got
        ), got

    def test_object_setattr_bypass(self) -> None:
        vertex = VERTEX_SRC.replace(
            "        self.send(1, probe)\n",
            '        object.__setattr__(probe, "tag", 3)\n        self.send(1, probe)\n',
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX009" and "object.__setattr__" in msg for rule, _, msg in got
        ), got

    def test_augmented_assignment(self) -> None:
        vertex = VERTEX_SRC.replace(
            "        self.send(1, probe)\n",
            "        probe.tag += 1\n        self.send(1, probe)\n",
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX009" and "augmented assignment" in msg for rule, _, msg in got
        ), got

    def test_dataclasses_replace_is_fine(self) -> None:
        vertex = VERTEX_SRC.replace(
            "        self.send(1, probe)\n",
            "        import dataclasses\n"
            "        probe = dataclasses.replace(probe, tag=probe.tag)\n"
            "        self.send(1, probe)\n",
        )
        assert findings(project(**{VERTEX_PATH: vertex})) == []


class TestLiveBackendSafety:
    def test_shared_module_state(self) -> None:
        vertex = VERTEX_SRC + (
            "\n\nSEEN = {}\n"
            "\n"
            "class Tracker:\n"
            "    def on_message(self, sender: int, message: Probe) -> None:\n"
            "        SEEN[sender] = message\n"
        )
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX010" and "module-level mutable dict 'SEEN'" in msg
            for rule, _, msg in got
        ), got

    def test_unread_module_constant_is_not_flagged(self) -> None:
        vertex = VERTEX_SRC + "\n\nSCRATCH = {}\n"
        assert findings(project(**{VERTEX_PATH: vertex})) == []

    def test_wall_clock_reachable_through_helper(self) -> None:
        vertex = VERTEX_SRC.replace(
            "            self._forward(message)\n",
            "            self._forward(message)\n            self._nap()\n",
        ) + (
            "\n    def _nap(self) -> None:\n"
            "        import time\n"
            "        time.sleep(0.1)\n"
        )
        # module-level import form (the function-local one above is for
        # layout only; use a module import so aliases resolve)
        vertex = "import time\n" + vertex.replace("        import time\n", "")
        got = findings(project(**{VERTEX_PATH: vertex}))
        assert any(
            rule == "RPX010"
            and "time.sleep()" in msg
            and "on_message" in msg
            and "_nap" in msg
            for rule, _, msg in got
        ), got

    def test_suppression_comment_silences_project_rule(self) -> None:
        vertex = VERTEX_SRC + (
            "\n\nSEEN = {}  # repro-lint: disable=RPX010\n"
            "\n"
            "class Tracker:\n"
            "    def on_message(self, sender: int, message: Probe) -> None:\n"
            "        SEEN[sender] = message\n"
        )
        assert findings(project(**{VERTEX_PATH: vertex})) == []


class TestAnchorGating:
    def test_project_pass_skipped_without_category_registry(
        self, tmp_path: Path
    ) -> None:
        target = tmp_path / "src" / "repro" / "basic" / "vertex.py"
        target.parent.mkdir(parents=True)
        target.write_text(VERTEX_SRC)
        run = run_project([tmp_path / "src"])
        assert not run.project_pass_ran
        assert run.diagnostics == []

    def test_project_pass_runs_with_category_registry(
        self, tmp_path: Path
    ) -> None:
        for logical, source in CLEAN_PROJECT:
            target = tmp_path / logical
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        run = run_project([tmp_path / "src"])
        assert run.project_pass_ran
        assert run.diagnostics == []


class TestStaticViewMatchesRuntime:
    """The AST-resolved taxonomies equal what the registry registers."""

    def _real_analysis(self) -> ProjectAnalysis:
        contexts = []
        for path in iter_python_files([REPO_ROOT / "src"]):
            ctx, _ = _load_file(path)
            if ctx is not None:
                contexts.append(ctx)
        return ProjectAnalysis.from_contexts(contexts)

    def test_taxonomies_round_trip(self) -> None:
        from repro.core.registry import all_variants

        analysis = self._real_analysis()
        static = {info.variant: info for info in analysis.taxonomies}
        checked = 0
        for variant in all_variants():
            taxonomy = variant.capabilities.taxonomy
            if taxonomy is None:
                assert variant.name not in static
                continue
            info = static[variant.name]
            assert info.model == variant.capabilities.model
            assert info.categories == taxonomy.lifecycle_categories()
            assert info.endpoint_keys == taxonomy.endpoint_keys
            assert info.edge_keys == taxonomy.edge_keys
            assert info.declared_by_key == taxonomy.declared_by_key
            checked += 1
        assert checked >= 2, "expected at least the basic and ddb taxonomies"

    def test_every_send_site_resolves_on_the_real_tree(self) -> None:
        """No protocol send is invisible to the analyzer (conservatism cap)."""
        analysis = self._real_analysis()
        unresolved = [
            (site.ref.path, site.ref.line)
            for site in analysis.send_sites
            if site.message_class is None
        ]
        assert unresolved == [], unresolved
        assert len(analysis.send_sites) >= 15

    def test_every_trace_site_resolves_on_the_real_tree(self) -> None:
        analysis = self._real_analysis()
        unresolved = [
            (site.ref.path, site.ref.line)
            for site in analysis.trace_sites
            if site.category is None
        ]
        assert unresolved == [], unresolved
