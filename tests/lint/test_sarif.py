"""SARIF 2.1.0 output: structure, validation, stability."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import ALL_RULES
from repro.lint.sarif import (
    SARIF_VERSION,
    render_sarif,
    sarif_payload,
    validate_sarif,
)

SAMPLE = [
    Diagnostic(
        path="src/repro/sim/dirty.py",
        line=5,
        col=12,
        rule="RPX002",
        message="wall-clock call time.time()",
    ),
    Diagnostic(
        path="src/repro/basic/vertex.py",
        line=9,
        col=1,
        rule="RPX008",
        message="undeclared message send",
    ),
]


class TestPayload:
    def test_validates_and_carries_every_rule(self) -> None:
        payload = sarif_payload(SAMPLE)
        assert validate_sarif(payload) == []
        assert payload["version"] == SARIF_VERSION
        (run,) = payload["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        # RPX000 plus every registered rule, in id order
        assert rule_ids == ["RPX000"] + [rule.rule_id for rule in ALL_RULES]
        assert len(run["results"]) == 2

    def test_rule_index_matches_rule_id(self) -> None:
        payload = sarif_payload(SAMPLE)
        (run,) = payload["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_locations_are_one_based(self) -> None:
        payload = sarif_payload(SAMPLE)
        (result, _) = sorted(
            payload["runs"][0]["results"], key=lambda r: r["ruleId"]
        )
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_render_is_byte_stable(self) -> None:
        assert render_sarif(SAMPLE) == render_sarif(list(reversed(SAMPLE)))

    def test_empty_run_still_validates(self) -> None:
        payload = sarif_payload([])
        assert validate_sarif(payload) == []
        assert payload["runs"][0]["results"] == []


class TestValidator:
    """The hand-rolled schema check rejects what code scanning rejects."""

    def test_rejects_non_object(self) -> None:
        assert validate_sarif([]) != []

    def test_rejects_wrong_version(self) -> None:
        payload = sarif_payload([])
        payload["version"] = "2.0.0"
        assert any("version" in e for e in validate_sarif(payload))

    def test_rejects_missing_driver_name(self) -> None:
        payload = sarif_payload([])
        del payload["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in e for e in validate_sarif(payload))

    def test_rejects_result_without_message(self) -> None:
        payload = sarif_payload(SAMPLE)
        del payload["runs"][0]["results"][0]["message"]
        assert any("message.text" in e for e in validate_sarif(payload))

    def test_rejects_mismatched_rule_index(self) -> None:
        payload = sarif_payload(SAMPLE)
        payload["runs"][0]["results"][0]["ruleIndex"] = 0  # RPX000's slot
        assert any("ruleIndex" in e for e in validate_sarif(payload))

    def test_rejects_zero_start_line(self) -> None:
        payload = sarif_payload(SAMPLE)
        location = payload["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in e for e in validate_sarif(payload))


class TestCliEndToEnd:
    def test_sarif_of_dirty_tree_validates(self, tmp_path: Path, capsys) -> None:
        target = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\n\ndef stamp() -> float:\n    return time.time()\n")
        assert main(["lint", str(tmp_path / "src"), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert validate_sarif(payload) == []
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "RPX002"
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("dirty.py")
        assert "\\" not in uri

    def test_sarif_of_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        target = tmp_path / "src" / "repro" / "sim" / "clean.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        assert main(["lint", str(tmp_path / "src"), "--format", "sarif"]) == 0
        assert validate_sarif(json.loads(capsys.readouterr().out)) == []
