"""Edge cases of the ``# repro-lint: disable=...`` suppression comments."""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import lint_source
from repro.lint.suppress import filter_suppressed, suppressions_by_line

LOGICAL = "src/repro/sim/demo.py"


def diag(line: int, rule: str = "RPX002") -> Diagnostic:
    return Diagnostic(path=LOGICAL, line=line, col=1, rule=rule, message="m")


class TestDirectiveParsing:
    def test_multi_rule_directive(self) -> None:
        table = suppressions_by_line(
            ["x = 1  # repro-lint: disable=RPX001,RPX004"]
        )
        assert table == {1: {"RPX001", "RPX004"}}

    def test_whitespace_and_case_are_tolerated(self) -> None:
        table = suppressions_by_line(
            ["x = 1  #repro-lint:  disable= rpx002 , RPX009 "]
        )
        assert table == {1: {"RPX002", "RPX009"}}

    def test_unknown_rule_ids_are_kept_verbatim(self) -> None:
        """An unknown id suppresses nothing real but must not crash."""
        table = suppressions_by_line(["x = 1  # repro-lint: disable=RPX999"])
        assert table == {1: {"RPX999"}}
        kept = filter_suppressed([diag(1, "RPX002")], ["x  # repro-lint: disable=RPX999"])
        assert kept == [diag(1, "RPX002")]

    def test_all_wildcard(self) -> None:
        kept = filter_suppressed(
            [diag(1, "RPX002"), diag(1, "RPX008")],
            ["x = 1  # repro-lint: disable=ALL"],
        )
        assert kept == []

    def test_empty_directive_suppresses_nothing(self) -> None:
        assert suppressions_by_line(["x = 1  # repro-lint: disable=,"]) == {}

    def test_directive_only_applies_to_its_own_line(self) -> None:
        lines = ["a = 1  # repro-lint: disable=RPX002", "b = 2"]
        kept = filter_suppressed([diag(1), diag(2)], lines)
        assert kept == [diag(2)]


class TestContinuationLines:
    """Diagnostics anchor to the physical line of the flagged node; the
    directive must sit on that line, even inside a multi-line call."""

    def test_directive_on_the_flagged_continuation_line(self) -> None:
        source = (
            "import time\n"
            "\n"
            "value = max(\n"
            "    0.0,\n"
            "    time.time(),  # repro-lint: disable=RPX002\n"
            ")\n"
        )
        assert lint_source(source, LOGICAL) == []

    def test_directive_on_the_wrong_line_does_not_suppress(self) -> None:
        source = (
            "import time\n"
            "\n"
            "value = max(  # repro-lint: disable=RPX002\n"
            "    0.0,\n"
            "    time.time(),\n"
            ")\n"
        )
        diagnostics = lint_source(source, LOGICAL)
        assert [d.rule for d in diagnostics] == ["RPX002"]
        assert diagnostics[0].line == 5

    def test_multi_rule_directive_suppresses_both_rules_on_one_line(self) -> None:
        source = (
            "import time\n"
            "import random\n"
            "\n"
            "x = (time.time(), random.random())  # repro-lint: disable=RPX001,RPX002\n"
        )
        assert lint_source(source, LOGICAL) == []

    def test_partial_directive_keeps_the_other_rule(self) -> None:
        source = (
            "import time\n"
            "import random\n"
            "\n"
            "x = (time.time(), random.random())  # repro-lint: disable=RPX002\n"
        )
        diagnostics = lint_source(source, LOGICAL)
        assert [d.rule for d in diagnostics] == ["RPX001"]
