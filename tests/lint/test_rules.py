"""Fixture-driven tests: one passing and one failing fixture per RPX rule.

Each fixture's first line is ``# lint-as: <logical path>`` — the path the
file is linted *as*, which is how path-scoped rules (wall-clock only in
protocol packages, frozen dataclasses only in messages.py, ...) are
exercised from files that physically live under tests/lint/fixtures/.
Failing fixtures mark every expected finding with ``# expect: RPXnnn`` on
the flagged line; the test demands an exact (rule, line) match, so a
fixture that accidentally trips a *different* rule fails loudly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"
RULE_IDS = ("RPX001", "RPX002", "RPX003", "RPX004", "RPX005", "RPX006", "RPX007")

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")


def load_fixture(name: str) -> tuple[str, str]:
    source = (FIXTURES / name).read_text()
    first_line = source.splitlines()[0]
    assert first_line.startswith("# lint-as:"), f"{name} missing '# lint-as:' header"
    logical = first_line.split(":", 1)[1].strip()
    return source, logical


def expected_findings(source: str) -> set[tuple[str, int]]:
    findings: set[tuple[str, int]] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                findings.add((rule_id.strip(), lineno))
    return findings


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id: str) -> None:
    source, logical = load_fixture(f"{rule_id.lower()}_good.py")
    diagnostics = lint_source(source, logical)
    assert diagnostics == [], [d.format_text() for d in diagnostics]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_reports_rule_and_lines(rule_id: str) -> None:
    source, logical = load_fixture(f"{rule_id.lower()}_bad.py")
    expected = expected_findings(source)
    assert expected, "bad fixture must carry at least one '# expect:' marker"
    assert {rule for rule, _ in expected} == {rule_id}
    diagnostics = lint_source(source, logical)
    actual = {(d.rule, d.line) for d in diagnostics}
    assert actual == expected, [d.format_text() for d in diagnostics]


class TestWallClockAllowlist:
    """RPX002's narrow allowlist: exactly repro/obs/profile.py, nothing else."""

    def test_profile_module_may_read_wall_clock(self) -> None:
        source, logical = load_fixture("rpx002_obs_allowlist_good.py")
        assert logical == "src/repro/obs/profile.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_other_obs_modules_are_flagged(self) -> None:
        source, logical = load_fixture("rpx002_obs_allowlist_bad.py")
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX002"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_allowlist_is_exact_module_paths(self) -> None:
        from repro.lint.rules.determinism import WALL_CLOCK_ALLOWED_MODULES

        assert WALL_CLOCK_ALLOWED_MODULES == {("repro", "obs", "profile.py")}
        # a nested or renamed module does not inherit the exemption
        source = "import time\nt = time.perf_counter()\n"
        diagnostics = lint_source(source, "src/repro/obs/profile/extra.py")
        assert [d.rule for d in diagnostics] == ["RPX002"]


class TestDriverTierLayering:
    """RPX004's top tier: sweep, live, and cluster drive the harness."""

    def test_sweep_may_import_harness_and_protocol(self) -> None:
        source, logical = load_fixture("rpx004_sweep_good.py")
        assert logical == "src/repro/sweep/fixture.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_harness_importing_sweep_is_flagged(self) -> None:
        source, logical = load_fixture("rpx004_sweep_bad.py")
        assert logical == "src/repro/experiments/fixture.py"
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_protocol_importing_sweep_is_flagged(self) -> None:
        source = "from repro.sweep import run_sweep\n"
        (diagnostic,) = lint_source(source, "src/repro/sim/fixture.py")
        assert diagnostic.rule == "RPX004"
        assert "repro.sweep" in diagnostic.message

    def test_tier_sets_are_disjoint_and_complete(self) -> None:
        from repro.lint.rules.layering import (
            CORE_PACKAGES,
            DRIVER_PACKAGES,
            HARNESS_PACKAGES,
            PROTOCOL_PACKAGES,
        )

        tiers = (PROTOCOL_PACKAGES, CORE_PACKAGES, HARNESS_PACKAGES, DRIVER_PACKAGES)
        for i, left in enumerate(tiers):
            for right in tiers[i + 1 :]:
                assert left & right == frozenset()
        assert CORE_PACKAGES == frozenset({"core", "baselines"})
        assert DRIVER_PACKAGES == frozenset({"sweep", "live", "cluster"})

    def test_cluster_may_import_everything_below(self) -> None:
        source, logical = load_fixture("rpx004_cluster_good.py")
        assert logical == "src/repro/cluster/fixture.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_harness_importing_cluster_is_flagged(self) -> None:
        source, logical = load_fixture("rpx004_cluster_bad.py")
        assert logical == "src/repro/obs/fixture.py"
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected


class TestCoreTierLayering:
    """RPX004's core tier: the protocol engine between protocol and harness."""

    def test_core_may_import_protocol_and_core(self) -> None:
        source, logical = load_fixture("rpx004_core_good.py")
        assert logical == "src/repro/core/fixture.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_core_importing_harness_or_driver_is_flagged(self) -> None:
        source, logical = load_fixture("rpx004_core_bad.py")
        assert logical == "src/repro/core/fixture.py"
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_protocol_importing_core_is_flagged(self) -> None:
        source = "from repro.core.registry import get_variant\n"
        (diagnostic,) = lint_source(source, "src/repro/basic/vertex.py")
        assert diagnostic.rule == "RPX004"
        assert "repro.core.registry" in diagnostic.message
        assert "protocol" in diagnostic.message

    def test_system_assemblers_sit_in_the_core_tier(self) -> None:
        # the system.py modules inside protocol packages are core-tier:
        # they may import repro.core even though their neighbours may not.
        source = "from repro.core.engine import DeclarationLog\n"
        for module in ("basic", "ddb", "ormodel"):
            assert lint_source(source, f"src/repro/{module}/system.py") == []
        # ...but still not the harness or the driver.
        upward = "from repro.workloads import scenarios\n"
        (diagnostic,) = lint_source(upward, "src/repro/basic/system.py")
        assert diagnostic.rule == "RPX004"
        assert "core" in diagnostic.message

    def test_baselines_package_is_core_tier(self) -> None:
        assert lint_source(
            "from repro.basic.system import BasicSystem\n",
            "src/repro/baselines/base.py",
        ) == []
        (diagnostic,) = lint_source(
            "from repro.sweep.grids import build_grid\n",
            "src/repro/baselines/base.py",
        )
        assert diagnostic.rule == "RPX004"


class TestTransportSeam:
    """RPX004's seam exemption: repro.core.transport is importable anywhere."""

    def test_protocol_may_import_the_seam_in_every_form(self) -> None:
        for source in (
            "from repro.core.transport import NodeContext\n",
            "import repro.core.transport\n",
            "from repro.core import transport\n",
        ):
            assert lint_source(source, "src/repro/basic/fixture.py") == [], source

    def test_other_core_modules_stay_flagged(self) -> None:
        (diagnostic,) = lint_source(
            "from repro.core.assembly import build_runtime\n",
            "src/repro/basic/fixture.py",
        )
        assert diagnostic.rule == "RPX004"
        assert "repro.core" in diagnostic.message

    def test_mixed_alias_import_is_still_flagged(self) -> None:
        # naming the seam alongside a non-seam sibling gives no cover
        (diagnostic,) = lint_source(
            "from repro.core import transport, registry\n",
            "src/repro/basic/fixture.py",
        )
        assert diagnostic.rule == "RPX004"


class TestWorkloadSeam:
    """RPX004's second seam: repro.workloads.spec is importable anywhere."""

    def test_core_may_import_the_seam_in_every_form(self) -> None:
        source, logical = load_fixture("rpx004_workloads_good.py")
        assert logical == "src/repro/core/fixture.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_non_seam_workload_modules_stay_flagged(self) -> None:
        source, logical = load_fixture("rpx004_workloads_bad.py")
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_protocol_tier_gets_the_same_exemption(self) -> None:
        assert (
            lint_source(
                "from repro.workloads.spec import WorkloadSpec\n",
                "src/repro/basic/fixture.py",
            )
            == []
        )
        (diagnostic,) = lint_source(
            "from repro.workloads.provision import provision_workload\n",
            "src/repro/basic/fixture.py",
        )
        assert diagnostic.rule == "RPX004"

    def test_seam_modules_are_exact_paths(self) -> None:
        from repro.lint.rules.layering import SEAM_MODULES

        assert SEAM_MODULES == frozenset(
            {
                ("repro", "core", "transport"),
                ("repro", "core", "scheduling"),
                ("repro", "workloads", "spec"),
            }
        )


class TestSchedulingSeam:
    """RPX004's third seam: repro.core.scheduling is importable anywhere."""

    def test_protocol_may_import_the_seam_in_every_form(self) -> None:
        source, logical = load_fixture("rpx004_scheduling_good.py")
        assert logical == "src/repro/basic/fixture.py"
        diagnostics = lint_source(source, logical)
        assert diagnostics == [], [d.format_text() for d in diagnostics]

    def test_non_seam_core_modules_stay_flagged(self) -> None:
        source, logical = load_fixture("rpx004_scheduling_bad.py")
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_mixed_alias_import_is_still_flagged(self) -> None:
        # naming the seam alongside a non-seam sibling gives no cover
        (diagnostic,) = lint_source(
            "from repro.core import scheduling, registry\n",
            "src/repro/basic/fixture.py",
        )
        assert diagnostic.rule == "RPX004"


class TestBackendNeutrality:
    """RPX007: protocol packages never name a concrete backend module."""

    def test_system_assemblers_are_exempt(self) -> None:
        source = "from repro.sim.network import Network\n"
        for module in ("basic", "ddb", "ormodel"):
            assert lint_source(source, f"src/repro/{module}/system.py") == []

    def test_live_backend_import_trips_both_rules(self) -> None:
        # repro.live is also driver-tier, so the layering rule fires too
        source = "from repro.live.transport import AsyncioTransport\n"
        diagnostics = lint_source(source, "src/repro/basic/fixture.py")
        assert {d.rule for d in diagnostics} == {"RPX004", "RPX007"}

    def test_module_alias_form_is_flagged(self) -> None:
        (diagnostic,) = lint_source(
            "from repro.sim import network\n", "src/repro/baselines/fixture.py"
        )
        assert diagnostic.rule == "RPX007"
        assert "repro.sim.network" in diagnostic.message

    def test_cluster_backend_import_trips_both_rules(self) -> None:
        # the fixture carries both markers: cluster is driver-tier (RPX004)
        # and a concrete backend module (RPX007) at once
        source, logical = load_fixture("rpx007_cluster_bad.py")
        assert logical == "src/repro/ddb/fixture.py"
        expected = expected_findings(source)
        assert expected and {rule for rule, _ in expected} == {"RPX004", "RPX007"}
        diagnostics = lint_source(source, logical)
        assert {(d.rule, d.line) for d in diagnostics} == expected

    def test_backend_module_set_names_all_three_backends(self) -> None:
        from repro.lint.rules.backend import BACKEND_MODULES

        assert BACKEND_MODULES == {
            ("repro", "sim", "simulator"),
            ("repro", "sim", "network"),
            ("repro", "live", "transport"),
            ("repro", "cluster", "transport"),
        }

    def test_sim_package_itself_is_not_checked(self) -> None:
        # sim *is* the simulator backend; it may name its own modules
        assert lint_source(
            "from repro.sim.simulator import Simulator\n",
            "src/repro/sim/fixture.py",
        ) == []

    def test_process_base_class_stays_importable(self) -> None:
        # the seam's MessageProcess is realised by sim.process.Process;
        # subclassing it is how protocol nodes exist at all
        assert lint_source(
            "from repro.sim.process import Process\n",
            "src/repro/basic/fixture.py",
        ) == []


class TestCorruptingRealSources:
    """Deliberate corruption of real repo files is caught precisely."""

    def repo_root(self) -> Path:
        return Path(__file__).parents[2]

    def test_unfreezing_a_message_dataclass_is_caught(self) -> None:
        path = self.repo_root() / "src" / "repro" / "basic" / "messages.py"
        source = path.read_text()
        assert "@dataclass(frozen=True, slots=True)\nclass Probe:" in source
        corrupted = source.replace(
            "@dataclass(frozen=True, slots=True)\nclass Probe:", "@dataclass\nclass Probe:"
        )
        class_line = corrupted.splitlines().index("class Probe:") + 1
        diagnostics = lint_source(corrupted, "src/repro/basic/messages.py")
        assert [(d.rule, d.line) for d in diagnostics] == [("RPX003", class_line)]
        assert "Probe" in diagnostics[0].message

    def test_typoing_a_trace_category_is_caught(self) -> None:
        path = self.repo_root() / "src" / "repro" / "basic" / "vertex.py"
        source = path.read_text()
        assert "categories.BASIC_PROBE_SENT" in source
        corrupted = source.replace(
            "categories.BASIC_PROBE_SENT", '"basic.probe.snet"', 1
        )
        literal_line = next(
            lineno
            for lineno, line in enumerate(corrupted.splitlines(), start=1)
            if '"basic.probe.snet"' in line
        )
        diagnostics = lint_source(corrupted, "src/repro/basic/vertex.py")
        assert [(d.rule, d.line) for d in diagnostics] == [("RPX005", literal_line)]
        assert "register it in repro.sim.categories" in diagnostics[0].message

    def test_registered_literal_suggests_the_constant(self) -> None:
        source = 'def f(sim):\n    sim.trace_now("net.sent", sender=1)\n'
        (diagnostic,) = lint_source(source, "src/repro/sim/fixture.py")
        assert diagnostic.rule == "RPX005"
        assert "repro.sim.categories.NET_SENT" in diagnostic.message


class TestSuppression:
    def test_same_line_disable_comment_suppresses(self) -> None:
        source, logical = load_fixture("rpx005_bad.py")
        suppressed = source.replace(
            "# expect: RPX005", "# repro-lint: disable=RPX005"
        )
        assert lint_source(suppressed, logical) == []

    def test_disable_all_suppresses_every_rule(self) -> None:
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=all\n"
        )
        assert lint_source(source, "src/repro/sim/fixture.py") == []

    def test_disable_comment_for_other_rule_does_not_suppress(self) -> None:
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPX001\n"
        )
        diagnostics = lint_source(source, "src/repro/sim/fixture.py")
        assert [d.rule for d in diagnostics] == ["RPX002"]

    def test_suppression_can_be_switched_off(self) -> None:
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPX002\n"
        )
        diagnostics = lint_source(source, "src/repro/sim/fixture.py", suppress=False)
        assert [d.rule for d in diagnostics] == ["RPX002"]


def test_syntax_error_yields_rpx000() -> None:
    diagnostics = lint_source("def broken(:\n", "src/repro/basic/fixture.py")
    assert len(diagnostics) == 1
    assert diagnostics[0].rule == "RPX000"
    assert "syntax error" in diagnostics[0].message
