"""The repo must satisfy its own lint rules, and the registry must be total."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths
from repro.sim import categories

REPO_ROOT = Path(__file__).parents[2]


def test_repo_is_lint_clean() -> None:
    """The CI self-lint invocation over the real tree reports nothing.

    This covers the project pass too (RPX008-010): the category registry
    is inside ``src``, so taxonomy conformance, message immutability, and
    live-backend safety are all checked against the actual protocol code.
    """
    diagnostics = lint_paths(
        [
            REPO_ROOT / "src",
            REPO_ROOT / "tests",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "tools",
        ]
    )
    assert diagnostics == [], "\n".join(d.format_text() for d in diagnostics)


def test_project_pass_runs_on_the_real_tree() -> None:
    from repro.lint import run_project

    run = run_project([REPO_ROOT / "src"])
    assert run.project_pass_ran
    assert run.files_scanned > 100


def test_every_constant_is_in_all_categories() -> None:
    constants = {
        name: value
        for name, value in vars(categories).items()
        if name.isupper() and name != "ALL_CATEGORIES" and isinstance(value, str)
    }
    assert set(constants.values()) == set(categories.ALL_CATEGORIES)
    # constant naming convention: upper-cased dotted string
    for name, value in constants.items():
        assert name == value.replace(".", "_").upper()
        assert categories.constant_name_for(value) == name
        assert categories.is_registered(value)
    assert categories.constant_name_for("no.such.category") is None
    assert not categories.is_registered("no.such.category")


def test_runtime_traces_only_use_registered_categories() -> None:
    """A full basic-model run records no category outside the registry."""
    from repro.basic.system import BasicSystem
    from repro.workloads.scenarios import schedule_cycle

    system = BasicSystem(n_vertices=3, wfgd_on_declare=True)
    schedule_cycle(system, [0, 1, 2])
    system.run_to_quiescence()
    recorded = {event.category for event in system.simulator.tracer}
    assert recorded, "expected a non-empty trace"
    unregistered = recorded - categories.ALL_CATEGORIES
    assert not unregistered, f"unregistered categories recorded: {unregistered}"
