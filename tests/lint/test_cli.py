"""End-to-end tests of the ``repro lint`` subcommand."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

BAD_PROTOCOL_FILE = (
    "import time\n"
    "\n"
    "\n"
    "def stamp() -> float:\n"
    "    return time.time()\n"
)


def write_tree(root: Path, rel: str, content: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/clean.py", "x = 1\n")
        assert main(["lint", str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        assert main(["lint", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "RPX002" in out
        assert "dirty.py:5:" in out
        assert "1 issue(s) found" in out

    def test_missing_path_exits_two(self, tmp_path: Path, capsys) -> None:
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_output_is_machine_readable_and_stable(
        self, tmp_path: Path, capsys
    ) -> None:
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 1
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["version"] == 2
        assert payload["count"] == 1
        (diagnostic,) = payload["diagnostics"]
        assert diagnostic["rule"] == "RPX002"
        assert diagnostic["line"] == 5
        assert diagnostic["col"] >= 1
        assert diagnostic["path"].endswith("dirty.py")
        assert "time" in diagnostic["message"]
        # byte-for-byte stable across runs
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 1
        assert capsys.readouterr().out == first

    def test_json_clean_payload(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/clean.py", "x = 1\n")
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "version": 2,
            "count": 0,
            "diagnostics": [],
            "statistics": {
                "files_scanned": 1,
                "suppressed": 0,
                "project_pass": False,
                "rules": {},
            },
        }

    def test_json_statistics_count_rules_and_suppressions(
        self, tmp_path: Path, capsys
    ) -> None:
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        write_tree(
            tmp_path,
            "src/repro/sim/quiet.py",
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPX002\n",
        )
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 1
        stats = json.loads(capsys.readouterr().out)["statistics"]
        assert stats["files_scanned"] == 2
        assert stats["suppressed"] == 1
        assert stats["rules"] == {"RPX002": 1}

    def test_json_diagnostics_are_sorted(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/b.py", BAD_PROTOCOL_FILE)
        write_tree(tmp_path, "src/repro/sim/a.py", BAD_PROTOCOL_FILE)
        assert main(["lint", str(tmp_path / "src"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        paths = [d["path"] for d in payload["diagnostics"]]
        assert paths == sorted(paths)


class TestExplain:
    @pytest.mark.parametrize(
        "rule_id",
        [
            "RPX001",
            "RPX002",
            "RPX003",
            "RPX004",
            "RPX005",
            "RPX006",
            "RPX007",
            "RPX008",
            "RPX009",
            "RPX010",
        ],
    )
    def test_explain_prints_rule_doc(self, rule_id: str, capsys) -> None:
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{rule_id}:")
        # every explanation ties the rule back to the paper / invariants
        assert len(out.splitlines()) > 3

    def test_explain_is_case_insensitive(self, capsys) -> None:
        assert main(["lint", "--explain", "rpx004"]) == 0
        assert "RPX004" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys) -> None:
        assert main(["lint", "--explain", "RPX999"]) == 2
        assert "unknown rule" in capsys.readouterr().out


class TestSuppressionEndToEnd:
    def test_disable_comment_silences_the_run(self, tmp_path: Path, capsys) -> None:
        write_tree(
            tmp_path,
            "src/repro/sim/suppressed.py",
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPX002\n",
        )
        assert main(["lint", str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out


class TestBrokenFiles:
    """Unreadable / unparseable files are findings, not crashes."""

    def test_syntax_error_reports_rpx000(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/broken.py", "def oops(:\n")
        assert main(["lint", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "RPX000" in out
        assert "syntax error" in out

    def test_undecodable_file_reports_rpx000(self, tmp_path: Path, capsys) -> None:
        path = tmp_path / "src" / "repro" / "sim" / "binary.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\xff\xfe\x00garbage")
        assert main(["lint", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "RPX000" in out
        assert "unreadable file" in out

    def test_one_broken_file_does_not_mask_the_rest(
        self, tmp_path: Path, capsys
    ) -> None:
        write_tree(tmp_path, "src/repro/sim/broken.py", "def oops(:\n")
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        assert main(["lint", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "RPX000" in out
        assert "RPX002" in out


class TestBaselineFlags:
    def test_record_then_check_round_trips(self, tmp_path: Path, capsys) -> None:
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        baseline = tmp_path / "lint-baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--baseline",
                    str(baseline),
                    "--record",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # identical tree: the baselined finding no longer fails the run
        assert (
            main(["lint", str(tmp_path / "src"), "--baseline", str(baseline)]) == 0
        )
        assert "1 recorded, 1 current, 0 new, 0 fixed" in capsys.readouterr().out

    def test_new_finding_fails_the_baseline_check(
        self, tmp_path: Path, capsys
    ) -> None:
        baseline = tmp_path / "lint-baseline.json"
        write_tree(tmp_path, "src/repro/sim/clean.py", "x = 1\n")
        assert (
            main(
                [
                    "lint",
                    str(tmp_path / "src"),
                    "--baseline",
                    str(baseline),
                    "--record",
                ]
            )
            == 0
        )
        capsys.readouterr()
        write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        assert (
            main(["lint", str(tmp_path / "src"), "--baseline", str(baseline)]) == 1
        )
        out = capsys.readouterr().out
        assert "lint baseline check failed" in out
        assert "new finding" in out

    def test_record_requires_baseline(self, capsys) -> None:
        assert main(["lint", "--record"]) == 2
        assert "--record requires --baseline" in capsys.readouterr().out

    def test_changed_only_rejects_baseline(self, capsys) -> None:
        assert main(["lint", "--changed-only", "--baseline", "x.json"]) == 2
        assert "cannot be combined" in capsys.readouterr().out


class TestDiscovery:
    def test_fixture_directories_are_skipped(self, tmp_path: Path, capsys) -> None:
        write_tree(
            tmp_path, "tests/lint/fixtures/bad.py", BAD_PROTOCOL_FILE.replace(
                "import time", "# lint-as: src/repro/sim/x.py\nimport time"
            )
        )
        assert main(["lint", str(tmp_path / "tests")]) == 0

    def test_explicit_file_argument_is_always_linted(
        self, tmp_path: Path, capsys
    ) -> None:
        path = write_tree(tmp_path, "src/repro/sim/dirty.py", BAD_PROTOCOL_FILE)
        assert main(["lint", str(path)]) == 1
