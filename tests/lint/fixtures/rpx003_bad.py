# lint-as: src/repro/fixturemodel/messages.py
"""RPX003 failing fixture: mutable message dataclasses."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Ping:  # expect: RPX003
    sender: int


@dataclass(frozen=False)
class Pong:  # expect: RPX003
    replier: int


@dataclass(slots=True)
class Nudge:  # expect: RPX003
    target: int
