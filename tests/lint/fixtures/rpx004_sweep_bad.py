# lint-as: src/repro/experiments/fixture.py
"""RPX004 failing fixture: harness code reaching up into the driver tier.

An experiment importing ``repro.sweep`` would make single experiments
depend on the multiprocessing machinery that runs them -- the tier stack
is protocol < harness < driver, and imports must point strictly downward.
"""

from __future__ import annotations

import repro.sweep.runner  # expect: RPX004
from repro import sweep  # expect: RPX004
from repro.sweep.grids import build_grid  # expect: RPX004


def fan_out(grid: str) -> object:
    from repro.sweep.merge import merge_results  # expect: RPX004

    return merge_results, build_grid, sweep, repro.sweep.runner
