# lint-as: src/repro/basic/fixture.py
"""RPX007 passing fixture: protocol code speaks the seam, not a backend."""

from __future__ import annotations

from repro.core.transport import NodeContext, Transport
from repro.sim import categories
from repro.sim.process import Process

__all__ = ["NodeContext", "Transport", "categories", "Process"]
