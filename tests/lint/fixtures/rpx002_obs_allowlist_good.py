# lint-as: src/repro/obs/profile.py
"""RPX002 allowlist passing fixture: the profiler module may read wall time.

``repro/obs/profile.py`` is the one module on the RPX002 allowlist
(WALL_CLOCK_ALLOWED_MODULES); linted *as* that path, perf_counter reads
are clean.
"""

from __future__ import annotations

import time


class Stopwatch:
    def __init__(self) -> None:
        self.started = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.started
