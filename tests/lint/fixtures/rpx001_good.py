# lint-as: src/repro/workloads/fixture.py
"""RPX001 passing fixture: randomness via seeded streams and annotations."""

from __future__ import annotations

import random


def think_time(rng: random.Random) -> float:
    # drawing from an injected (named, seeded) stream is the convention
    return rng.expovariate(1.0)


def make_stream(seed: int) -> random.Random:
    # an explicitly seeded Random is reproducible
    return random.Random(seed)
