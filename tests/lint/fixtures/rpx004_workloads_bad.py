# lint-as: src/repro/core/fixture.py
"""RPX004 failing fixture: the seam does not cover its siblings.

Only ``repro.workloads.spec`` is exempt; the package initialiser and the
schedule-body modules import protocol systems, so a core-tier module
reaching them would invert the tier stack exactly the way the seam was
carved to avoid.
"""

from __future__ import annotations

import repro.workloads  # expect: RPX004
from repro.workloads import provision  # expect: RPX004
from repro.workloads.families import ensure_registered  # expect: RPX004


def resolve() -> object:
    from repro.workloads.scenarios import schedule_cycle  # expect: RPX004

    return schedule_cycle, ensure_registered, provision, repro.workloads
