# lint-as: src/repro/obs/spans.py
"""RPX002 allowlist failing fixture: the rest of obs/ stays wall-clock free.

The allowlist names exactly ``repro/obs/profile.py``; linted as any other
module under ``obs/`` (here: spans.py), wall-clock reads are flagged.
"""

from __future__ import annotations

import time
from datetime import datetime


def stamp_span() -> float:
    return time.perf_counter()  # expect: RPX002


def wall_deadline() -> float:
    return time.monotonic() + 5.0  # expect: RPX002


def label() -> str:
    return datetime.now().isoformat()  # expect: RPX002
