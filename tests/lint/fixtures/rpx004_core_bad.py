# lint-as: src/repro/core/fixture.py
"""RPX004 failing fixture: core tier reaching up into harness/driver.

The protocol-engine tier must stay runnable without the harness that
observes it: a core module importing experiments, workloads, obs, or the
sweep driver would invert the tier stack (protocol < core < harness <
driver).
"""

from __future__ import annotations

import repro.sweep.runner  # expect: RPX004
from repro import workloads  # expect: RPX004
from repro.experiments.e1_completeness import run  # expect: RPX004


def fold(system) -> object:
    from repro.obs.spans import build_spans  # expect: RPX004

    return build_spans, run, workloads, repro.sweep.runner
