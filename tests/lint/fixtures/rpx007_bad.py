# lint-as: src/repro/ormodel/fixture.py
"""RPX007 failing fixture: protocol code naming concrete backend modules."""

from __future__ import annotations

import repro.sim.simulator  # expect: RPX007
from repro.sim import simulator  # expect: RPX007
from repro.sim.network import Network  # expect: RPX007


def peek() -> object:
    return Network, simulator, repro.sim.simulator
