# lint-as: src/repro/basic/fixture.py
"""RPX004 passing fixture: the scheduling seam is importable anywhere.

``repro.core.scheduling`` holds only the InitiationPolicy protocol and
the frozen PolicySpec / SchedulingPolicy registry (it imports nothing
above ``repro.errors``), so protocol-tier initiation adapters may name
it even though the rest of ``repro.core`` sits a tier above them.
"""

from __future__ import annotations

import repro.core.scheduling
from repro.core import scheduling
from repro.core.scheduling import InitiationPolicy, PolicySpec

__all__ = ["InitiationPolicy", "PolicySpec", "scheduling", "repro"]
