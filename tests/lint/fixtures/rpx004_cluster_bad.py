# lint-as: src/repro/obs/fixture.py
"""RPX004 failing fixture: harness code reaching up into the cluster driver.

The telemetry layer observing a run must not import the machinery that
spawns it: ``obs`` works against any transport's tracer, and a
harness -> cluster import would make single-process observation depend
on the multi-process runtime.
"""

from __future__ import annotations

import repro.cluster.transport  # expect: RPX004
from repro import cluster  # expect: RPX004
from repro.cluster.runner import run_cluster  # expect: RPX004


def observe() -> object:
    from repro.cluster.frames import encode_value  # expect: RPX004

    return encode_value, run_cluster, cluster, repro.cluster.transport
