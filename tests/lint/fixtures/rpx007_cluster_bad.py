# lint-as: src/repro/ddb/fixture.py
"""RPX007 failing fixture: protocol code naming the cluster backend.

A controller importing ``repro.cluster.transport`` would weld the node
code to the multi-process runtime -- the same portability break as
naming the simulator or the asyncio backend.  (The layering rule fires
too: ``cluster`` is driver-tier.)
"""

from __future__ import annotations

from repro.cluster.transport import ClusterTransport  # expect: RPX004, RPX007


def peek() -> object:
    return ClusterTransport
