# lint-as: src/repro/basic/fixture.py
"""RPX006 passing fixture: handlers mutate their own state, send messages."""

from __future__ import annotations

from repro.sim.process import Process


class WellBehavedVertex(Process):
    def __init__(self, pid) -> None:
        super().__init__(pid)
        self.pending_in: set[int] = set()
        self._records: dict[int, object] = {}

    def on_message(self, sender, message) -> None:
        # own state: fine
        self.pending_in.add(sender)
        # reading a peer is fine; only writes are isolation violations
        peer = self.network.process(sender)
        if peer is not None:
            self.send(sender, message)

    def _on_reply(self, message) -> None:
        # mutating state fetched from our own containers is fine
        record = self._records.get(0)
        if record is not None:
            record.done = True
