# lint-as: src/repro/fixturemodel/messages.py
"""RPX003 passing fixture: all message dataclasses frozen."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Ping:
    sender: int


@dataclass(frozen=True, slots=True)
class Batch:
    items: tuple[int, ...] = field(default_factory=tuple)


class NotADataclass:
    """Plain helper classes in a messages module are not constrained."""
