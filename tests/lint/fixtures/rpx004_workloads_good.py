# lint-as: src/repro/core/fixture.py
"""RPX004 passing fixture: the workload-spec seam is importable anywhere.

``repro.workloads.spec`` holds only frozen specs and the family registry
(no protocol imports), so core-tier resolvers -- conformance scenarios,
variant setup seams -- may import it even though the rest of
``repro.workloads`` sits in the harness tier above them.
"""

from __future__ import annotations

import repro.workloads.spec
from repro.workloads import spec
from repro.workloads.spec import WorkloadSpec, get_family

__all__ = ["WorkloadSpec", "get_family", "spec", "repro"]
