# lint-as: src/repro/workloads/fixture.py
"""RPX001 failing fixture: process-global and unseeded randomness."""

from __future__ import annotations

import random


def jitter() -> float:
    return random.random()  # expect: RPX001


def pick(items: list[int]) -> int:
    return random.choice(items)  # expect: RPX001


def fresh_stream() -> random.Random:
    return random.Random()  # expect: RPX001
