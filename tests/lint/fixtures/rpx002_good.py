# lint-as: src/repro/sim/fixture.py
"""RPX002 passing fixture: protocol code reads virtual time only."""

from __future__ import annotations


class Driver:
    def __init__(self, simulator) -> None:
        self.simulator = simulator

    def stamp(self) -> float:
        return self.simulator.now

    def later(self, action) -> None:
        self.simulator.schedule(1.0, action)
