# lint-as: src/repro/basic/fixture.py
"""RPX005 passing fixture: categories referenced through the registry."""

from __future__ import annotations

from repro.sim import categories


def announce(simulator, vertex: int) -> None:
    simulator.trace_now(categories.BASIC_UNBLOCKED, vertex=vertex)


def count_probes(tracer) -> int:
    return len(tracer.events(categories.BASIC_PROBE_SENT))


def is_delivery(event) -> bool:
    return event.category == categories.NET_DELIVERED


def settle_span(tracer, now: float) -> None:
    tracer.record(now, categories.OBS_SPAN_SETTLED, outcome="deadlock")


def is_snapshot(event) -> bool:
    return event.category == categories.OBS_METRICS_SNAPSHOT
