# lint-as: src/repro/basic/fixture.py
"""RPX004 failing fixture: the scheduling seam does not cover ``core``.

Only ``repro.core.scheduling`` is exempt; the engine, registry, and the
package initialiser assemble systems a tier above the protocol logic,
so a protocol module reaching them would smuggle core bookkeeping into
protocol decisions -- the shared-knowledge cheating axiom P3 forbids.
"""

from __future__ import annotations

import repro.core.engine  # expect: RPX004
from repro import core  # expect: RPX004
from repro.core.registry import get_variant  # expect: RPX004


def resolve() -> object:
    from repro.core.conformance import ConformanceOutcome  # expect: RPX004

    return ConformanceOutcome, get_variant, core, repro.core.engine
