# lint-as: src/repro/core/fixture.py
"""RPX004 passing fixture: the core tier may import protocol + core.

``core`` (and ``baselines``) assemble protocol pieces into runnable
systems, so importing the protocol packages, the simulation substrate,
and sibling core modules is exactly the allowed direction.
"""

from __future__ import annotations

from repro.baselines.base import BaselineDetector
from repro.basic.messages import Probe
from repro.core.engine import DeclarationLog
from repro.ddb.locks import LockMode
from repro.sim.simulator import Simulator

__all__ = ["BaselineDetector", "Probe", "DeclarationLog", "LockMode", "Simulator"]
