# lint-as: src/repro/basic/fixture.py
"""RPX006 failing fixture: shared-memory cheating between processes."""

from __future__ import annotations

from repro.sim.process import Process


class CheatingVertex(Process):
    def on_message(self, sender, message) -> None:
        self.network.process(sender).pending_in.add(self.pid)  # expect: RPX006
        message.tag = 99  # expect: RPX006

    def _on_probe(self, probe) -> None:
        victim = self.network.process(0)
        victim.blocked = True  # expect: RPX006
