# lint-as: src/repro/sim/fixture.py
"""RPX002 failing fixture: wall-clock reads inside a protocol package."""

from __future__ import annotations

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # expect: RPX002


def wait_a_bit() -> None:
    time.sleep(0.1)  # expect: RPX002


def timestamp() -> str:
    return datetime.now().isoformat()  # expect: RPX002
