# lint-as: src/repro/basic/fixture.py
"""RPX004 failing fixture: protocol package reaching into the harness."""

from __future__ import annotations

import repro.experiments.e1_completeness  # expect: RPX004
from repro import workloads  # expect: RPX004
from repro.verification.oracle import probe_oracle  # expect: RPX004


def peek(system) -> object:
    from repro.analysis.stats import mean  # expect: RPX004

    return mean, workloads, probe_oracle, repro.experiments.e1_completeness
