# lint-as: src/repro/sweep/fixture.py
"""RPX004 passing fixture: the driver tier may import harness + protocol.

``sweep`` sits on top of the stack, so pulling in experiments, obs,
workloads, and the protocol packages is exactly the allowed direction.
"""

from __future__ import annotations

from repro.basic.system import BasicSystem
from repro.experiments import e1_completeness
from repro.obs.profile import SimulatorProfiler
from repro.sim.simulator import Simulator
from repro.workloads import scenarios

__all__ = [
    "BasicSystem",
    "Simulator",
    "SimulatorProfiler",
    "e1_completeness",
    "scenarios",
]
