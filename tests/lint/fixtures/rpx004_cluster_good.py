# lint-as: src/repro/cluster/fixture.py
"""RPX004 passing fixture: the cluster driver may import everything below.

``cluster`` is driver-tier alongside ``sweep`` and ``live``: spawning
one worker process per node means wiring protocol systems, the live
backend it extends, the registry, and the telemetry bridge together --
all strictly downward imports.
"""

from __future__ import annotations

from repro.basic.system import BasicSystem
from repro.core.registry import get_variant
from repro.live.transport import AsyncioTransport
from repro.obs.metrics import telemetry_for_variant
from repro.workloads.basic_random import RandomRequestWorkload

__all__ = [
    "AsyncioTransport",
    "BasicSystem",
    "RandomRequestWorkload",
    "get_variant",
    "telemetry_for_variant",
]
