# lint-as: src/repro/basic/fixture.py
"""RPX004 passing fixture: protocol code imports sideways and down only."""

from __future__ import annotations

from repro._ids import VertexId
from repro.basic.messages import Probe
from repro.errors import ProtocolError
from repro.sim import categories
from repro.sim.process import Process

__all__ = ["VertexId", "Probe", "ProtocolError", "categories", "Process"]
