# lint-as: src/repro/basic/fixture.py
"""RPX005 failing fixture: raw and typo'd trace-category literals."""

from __future__ import annotations


def announce(simulator, vertex: int) -> None:
    simulator.trace_now("basic.unblocked", vertex=vertex)  # expect: RPX005


def record_directly(tracer, now: float) -> None:
    tracer.record(now, "basic.probe.snet", source=0)  # expect: RPX005


def count_probes(tracer) -> int:
    return len(tracer.events("basic.probe.sent"))  # expect: RPX005


def is_delivery(event) -> bool:
    return event.category == "net.delivered"  # expect: RPX005


def settle_span(tracer, now: float) -> None:
    tracer.record(now, "obs.span.settled", outcome="deadlock")  # expect: RPX005


def is_snapshot(event) -> bool:
    return event.category == "obs.metrics.snapshot"  # expect: RPX005
