"""Lint baseline record/check semantics (mirrors the bench baseline)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    SCHEMA,
    BaselineError,
    canonical_document,
    check,
    record,
)
from repro.lint.diagnostics import Diagnostic

FINDING = Diagnostic(
    path="src/repro/sim/dirty.py",
    line=5,
    col=12,
    rule="RPX002",
    message="wall-clock call time.time()",
)
OTHER = Diagnostic(
    path="src/repro/basic/vertex.py",
    line=2,
    col=1,
    rule="RPX008",
    message="undeclared message send",
)


class TestRecord:
    def test_round_trip_is_byte_identical(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING, OTHER])
        first = path.read_bytes()
        record(path, [OTHER, FINDING])  # order must not matter
        assert path.read_bytes() == first
        assert first.decode() == canonical_document([FINDING, OTHER])

    def test_document_shape(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING])
        document = json.loads(path.read_text())
        assert document["schema"] == SCHEMA
        assert document["count"] == 1
        (entry,) = document["findings"]
        assert entry == FINDING.to_json()

    def test_ends_with_newline(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [])
        assert path.read_text().endswith("}\n")


class TestCheck:
    def test_identical_findings_pass(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING])
        lines = check(path, [FINDING])
        assert any("1 recorded, 1 current, 0 new, 0 fixed" in line for line in lines)

    def test_new_finding_fails(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING])
        with pytest.raises(BaselineError, match="1 new"):
            check(path, [FINDING, OTHER])

    def test_fixed_finding_fails_the_ratchet(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING, OTHER])
        with pytest.raises(BaselineError, match="1 fixed"):
            check(path, [FINDING])

    def test_moved_finding_is_new_plus_fixed(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        record(path, [FINDING])
        moved = Diagnostic(
            path=FINDING.path,
            line=FINDING.line + 1,
            col=FINDING.col,
            rule=FINDING.rule,
            message=FINDING.message,
        )
        with pytest.raises(BaselineError, match="1 new and 1 fixed"):
            check(path, [moved])

    def test_unrecognised_schema_raises(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"schema": "something-else/9", "findings": []}))
        with pytest.raises(BaselineError, match="schema"):
            check(path, [])

    def test_malformed_entry_raises(self, tmp_path: Path) -> None:
        path = tmp_path / "lint-baseline.json"
        path.write_text(
            json.dumps({"schema": SCHEMA, "findings": [{"path": "x.py"}]})
        )
        with pytest.raises(BaselineError, match="malformed baseline entry"):
            check(path, [])


class TestCommittedBaseline:
    """The repo's own committed baseline: empty, canonical, passing."""

    REPO_ROOT = Path(__file__).parents[2]

    def test_committed_baseline_is_empty_and_canonical(self) -> None:
        path = self.REPO_ROOT / "lint-baseline.json"
        assert path.is_file(), "lint-baseline.json must be committed"
        assert path.read_text() == canonical_document([])
