"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.basic.system import BasicSystem
from repro.sim.simulator import Simulator


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=42)


def make_cycle_system(k: int, seed: int = 0, **kwargs) -> BasicSystem:
    """A BasicSystem with a k-cycle of requests scheduled at distinct times.

    Vertex i requests vertex (i + 1) % k at time i * 0.5, so the cycle
    closes when vertex k-1 issues the final request.
    """
    system = BasicSystem(n_vertices=k, seed=seed, **kwargs)
    for i in range(k):
        system.schedule_request(i * 0.5, i, [(i + 1) % k])
    return system
