"""Unit tests for the shared protocol-engine bookkeeping + assembly."""

from __future__ import annotations

import pytest

from repro._ids import ProbeTag
from repro.core import (
    CompletenessReport,
    DeclarationLog,
    ProbeAccounting,
    build_runtime,
    completeness_report,
    dark_components,
    require_fleet,
)
from repro.errors import ConfigurationError


class TestDarkComponents:
    def test_empty_graph_has_no_components(self) -> None:
        assert dark_components([]) == []

    def test_chain_has_no_cyclic_component(self) -> None:
        assert dark_components([(0, 1), (1, 2), (2, 3)]) == []

    def test_cycle_is_one_component(self) -> None:
        components = dark_components([(0, 1), (1, 2), (2, 0)])
        assert components == [{0, 1, 2}]

    def test_two_disjoint_cycles(self) -> None:
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (4, 0)]
        components = dark_components(edges)
        assert sorted(components, key=min) == [{0, 1}, {2, 3}]

    def test_generic_over_node_type(self) -> None:
        components = dark_components([("a", "b"), ("b", "a")])
        assert components == [{"a", "b"}]


class TestCompletenessReport:
    def test_complete_when_every_component_has_a_declarer(self) -> None:
        report = completeness_report(
            [(0, 1), (1, 0), (2, 3), (3, 2)],
            declared={0, 2},
            deadlocked={0, 1, 2, 3},
        )
        assert report.complete
        assert report.undetected_components == []
        assert report.deadlocked_vertices == {0, 1, 2, 3}
        assert report.declared_vertices == {0, 2}

    def test_undeclared_component_is_reported(self) -> None:
        report = completeness_report(
            [(0, 1), (1, 0), (2, 3), (3, 2)], declared={0}, deadlocked={0, 1, 2, 3}
        )
        assert not report.complete
        assert report.undetected_components == [{2, 3}]

    def test_acyclic_dark_subgraph_is_trivially_complete(self) -> None:
        report = completeness_report([(0, 1), (1, 2)], declared=set(), deadlocked=set())
        assert report.complete

    def test_report_type_is_exported(self) -> None:
        report: CompletenessReport[int] = completeness_report(
            [], declared=set(), deadlocked=set()
        )
        assert isinstance(report, CompletenessReport)


class TestDeclarationLog:
    def test_sound_declarations_accumulate(self) -> None:
        log: DeclarationLog[str] = DeclarationLog(strict=True)
        log.record("d1", sound=True, complaint="unused")
        log.record("d2", sound=True, complaint="unused")
        assert log.declarations == ["d1", "d2"]
        assert log.violations == []
        assert len(log) == 2
        log.assert_sound("prefix: ")

    def test_strict_mode_raises_on_unsound_declaration(self) -> None:
        log: DeclarationLog[str] = DeclarationLog(strict=True)
        with pytest.raises(AssertionError, match="phantom at t=3"):
            log.record("bad", sound=False, complaint="phantom at t=3")
        # the declaration and the violation are recorded before the raise
        assert log.declarations == ["bad"]
        assert log.violations == ["bad"]

    def test_record_mode_counts_violations(self) -> None:
        log: DeclarationLog[str] = DeclarationLog(strict=False)
        log.record("bad", sound=False, complaint="unused")
        log.record("good", sound=True, complaint="unused")
        assert log.violations == ["bad"]
        with pytest.raises(AssertionError, match=r"QRP2 violated by: \['bad'\]"):
            log.assert_sound("QRP2 violated by: ")

    def test_repr_summarises_counts(self) -> None:
        log: DeclarationLog[str] = DeclarationLog(strict=False)
        log.record("bad", sound=False, complaint="unused")
        assert repr(log) == "DeclarationLog(declared=1, violations=1, strict=False)"


class TestProbeAccounting:
    def test_counts_per_tag(self) -> None:
        accounting = ProbeAccounting()
        tag_a, tag_b = ProbeTag(0, 1), ProbeTag(1, 1)
        accounting.count(tag_a)
        accounting.count(tag_a)
        accounting.count(tag_b)
        assert accounting.per_computation == {tag_a: 2, tag_b: 1}
        assert accounting.max_per_computation() == 2

    def test_empty_max_is_zero(self) -> None:
        assert ProbeAccounting().max_per_computation() == 0
        assert "computations=0" in repr(ProbeAccounting())


class TestAssembly:
    def test_runtime_is_deterministic_per_seed(self) -> None:
        one = build_runtime(seed=7, trace=False)
        two = build_runtime(seed=7, trace=False)
        draws_one = [one.simulator.rng.stream("test").random() for _ in range(5)]
        draws_two = [two.simulator.rng.stream("test").random() for _ in range(5)]
        assert draws_one == draws_two

    def test_network_is_bound_to_the_simulator(self) -> None:
        runtime = build_runtime(seed=0)
        assert runtime.network.simulator is runtime.simulator

    def test_require_fleet_accepts_positive_counts(self) -> None:
        require_fleet(1, "vertex")
        require_fleet(64, "site")

    def test_require_fleet_rejects_empty_fleets(self) -> None:
        with pytest.raises(ConfigurationError, match="need at least one vertex, got 0"):
            require_fleet(0, "vertex")
        with pytest.raises(ConfigurationError, match="need at least one site, got -1"):
            require_fleet(-1, "site")
