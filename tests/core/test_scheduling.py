"""The scheduling seam: registry contract, spec stability, the controller.

Four concerns, mirroring the detector-variant and workload-family
registry tests:

* the :class:`~repro.core.scheduling.SchedulingPolicy` registry contract
  (built-ins present, duplicate rejection, one-call third-party
  registration runnable end to end);
* :class:`~repro.core.scheduling.PolicySpec` golden stability -- the
  ``policy_id`` spelling and its pickle round-trip are wire formats
  (sweep workers, cell ids), so their shape is pinned here;
* the :class:`~repro.core.scheduling.AdaptivePolicy` controller's unit
  behaviour against a scripted fake site (guard, clamps, Ling term);
* per-policy trace determinism on the simulator backend, and the
  adaptive policy's conformance on all three transports (the sim lane
  here; the live and cluster lanes ride the cross-runtime suites).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import scheduling
from repro.core.registry import get_variant
from repro.core.scheduling import (
    AdaptivePolicy,
    ComputationOutcome,
    DelayedPolicy,
    ImmediatePolicy,
    InitiationPolicy,
    PolicySpec,
    SchedulingPolicy,
    all_policies,
    build_policy,
    coerce_policy_spec,
    get_policy,
    make_params,
    parse_policy_spec,
    policies_for_model,
    policy_names,
    register_policy,
    require_model,
)
from repro.errors import ConfigurationError
from repro.workloads.provision import provision_workload
from repro.workloads.spec import WorkloadSpec

BUILTINS = ("adaptive", "delayed", "immediate", "manual", "periodic")


class TestRegistry:
    def test_builtins_register_on_first_lookup(self) -> None:
        assert policy_names() == BUILTINS
        for name in BUILTINS:
            assert get_policy(name).name == name
        assert tuple(p.name for p in all_policies()) == BUILTINS

    def test_unknown_policy_is_a_typed_error_naming_the_options(self) -> None:
        with pytest.raises(ConfigurationError, match="adaptive"):
            get_policy("nosuch")

    def test_duplicate_registration_rejected(self) -> None:
        delayed = get_policy("delayed")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy(delayed)

    def test_model_filtering(self) -> None:
        ddb = {p.name for p in policies_for_model("ddb")}
        basic = {p.name for p in policies_for_model("basic")}
        assert "periodic" in ddb
        assert "periodic" not in basic
        with pytest.raises(ConfigurationError, match="'periodic'"):
            require_model(PolicySpec(policy="periodic"), "basic")

    def test_every_builtin_example_builds(self) -> None:
        for policy in all_policies():
            instance = build_policy(policy.example)
            assert isinstance(instance, InitiationPolicy)
            assert parse_policy_spec(policy.example.policy_id) == policy.example

    def test_third_party_registration_is_one_call(self) -> None:
        """One ``register_policy`` call makes a policy resolvable by
        name, parseable from a policy-id string, and runnable through
        the provisioning path -- the whole seam, no other hook."""

        class EagerThirdParty(ImmediatePolicy):
            pass

        register_policy(
            SchedulingPolicy(
                name="test-eager",
                title="third-party test policy",
                description="registers in one call, runs everywhere",
                source="this test",
                models=("basic",),
                build=lambda spec: EagerThirdParty(),
                example=PolicySpec(policy="test-eager"),
            )
        )
        try:
            assert "test-eager" in policy_names()
            spec = parse_policy_spec("test-eager")
            run = provision_workload(
                get_variant("basic"),
                WorkloadSpec(family="cycle", n=4),
                policy=spec,
            )
            run.run_to_quiescence()
            outcome = run.summarize()
            assert outcome.declarations > 0
            assert outcome.soundness_violations == 0
        finally:
            scheduling._REGISTRY.pop("test-eager")

    def test_overlay_variants_reject_policies(self) -> None:
        # Overlays bind to a host system and have no initiation seam.
        with pytest.raises(ConfigurationError, match="overlay"):
            provision_workload(
                get_variant("centralized"),
                WorkloadSpec(family="cycle", n=4),
                policy=PolicySpec(policy="adaptive"),
            )


class TestPolicySpecGoldens:
    #: the wire spellings are load-bearing (cell ids, --policy flags,
    #: sweep workers); changing any of these is a format break.
    GOLDEN_IDS = {
        PolicySpec(policy="manual"): "manual",
        PolicySpec(policy="immediate"): "immediate",
        PolicySpec(policy="delayed", params=make_params(T=2.0)): "delayed/T=2",
        PolicySpec(policy="delayed", params=make_params(T=0.5)): "delayed/T=0.5",
        PolicySpec(
            policy="periodic", params=make_params(period=5.0, optimized=0.0)
        ): "periodic/optimized=0/period=5",
        PolicySpec(policy="adaptive"): "adaptive",
        PolicySpec(
            policy="adaptive", params=make_params(margin=2.0, t_max=8.0)
        ): "adaptive/margin=2/t_max=8",
    }

    def test_policy_id_spelling_is_stable(self) -> None:
        for spec, expected in self.GOLDEN_IDS.items():
            assert spec.policy_id == expected

    def test_parse_is_the_inverse_of_policy_id(self) -> None:
        for spec, text in self.GOLDEN_IDS.items():
            assert parse_policy_spec(text) == spec

    def test_pickle_round_trip_preserves_identity(self) -> None:
        for spec in self.GOLDEN_IDS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert hash(clone) == hash(spec)
            assert clone.policy_id == spec.policy_id

    @pytest.mark.parametrize("text", ["", "delayed/T", "delayed/=2", "delayed/T=x"])
    def test_malformed_specs_raise(self, text: str) -> None:
        with pytest.raises(ConfigurationError):
            parse_policy_spec(text)

    def test_coerce_accepts_spec_string_and_none(self) -> None:
        spec = PolicySpec(policy="delayed", params=make_params(T=2.0))
        assert coerce_policy_spec(None) is None
        assert coerce_policy_spec(spec) is spec
        assert coerce_policy_spec("delayed/T=2") == spec

    def test_param_lookup_typed_error(self) -> None:
        with pytest.raises(ConfigurationError, match="'T'"):
            PolicySpec(policy="delayed").param("T")


class _FakeTimer:
    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _FakeCtx:
    def __init__(self) -> None:
        self.time = 0.0
        self.timers: list[tuple[float, object]] = []

    def now(self) -> float:
        return self.time

    def set_timer(self, delay, callback, name=""):  # noqa: ANN001, ANN201
        timer = _FakeTimer()
        self.timers.append((delay, timer))
        return timer


class _FakeSite:
    """The minimal InitiationSite a policy unit test needs."""

    def __init__(self) -> None:
        self.ctx = _FakeCtx()
        self.site_key = "site"
        self.initiated: list[object] = []
        self.avoided = 0

    def initiate(self, subject) -> None:  # noqa: ANN001
        self.initiated.append(subject)

    def is_waiting(self, subject) -> bool:  # noqa: ANN001
        return True

    def timer_name(self, subject) -> str:  # noqa: ANN001
        return f"T-timer {subject}"

    def note_avoided(self) -> None:
        self.avoided += 1

    def scan(self, optimized: bool) -> None:
        raise AssertionError("unit tests never scan")

    def scan_timer_name(self) -> str:
        return "scan"


def _observe_lifetime(policy: AdaptivePolicy, site: _FakeSite, length: float) -> None:
    policy.on_waits_started(site, ("w",))
    site.ctx.time += length
    policy.on_wait_resolved(site, "w")


class TestAdaptiveController:
    def test_starts_from_t_init(self) -> None:
        assert AdaptivePolicy().current_t() == 2.0

    def test_guard_tracks_lifetimes_with_margin(self) -> None:
        policy = AdaptivePolicy()
        site = _FakeSite()
        _observe_lifetime(policy, site, 3.0)
        # First observation sets the EWMA exactly; guard = margin * 3.
        assert policy.current_t() == pytest.approx(9.0)

    def test_clamped_to_t_max_and_t_min(self) -> None:
        policy = AdaptivePolicy(t_min=1.0, t_max=10.0)
        site = _FakeSite()
        _observe_lifetime(policy, site, 100.0)
        assert policy.current_t() == 10.0
        policy = AdaptivePolicy(t_min=1.0, t_max=10.0)
        site = _FakeSite()
        _observe_lifetime(policy, site, 0.01)
        assert policy.current_t() == 1.0

    def test_ling_term_needs_cost_and_gap_then_lowers_t(self) -> None:
        policy = AdaptivePolicy()
        site = _FakeSite()
        _observe_lifetime(policy, site, 5.0)  # guard = 15
        # Fizzles feed cost only: the Ling term must stay inactive.
        policy.on_computation_outcome(
            ComputationOutcome("v", "fizzled", 8, 0.0, 1.0)
        )
        assert policy.current_t() == 15.0
        # Two deadlocks 4 units apart: gap EWMA exists, cost EWMA ~8.
        policy.on_computation_outcome(
            ComputationOutcome("v", "deadlock", 8, 1.0, 2.0)
        )
        policy.on_computation_outcome(
            ComputationOutcome("v", "deadlock", 8, 5.0, 6.0)
        )
        # T* = sqrt(2 * 8 * 4) = 8, below the 15-unit guard.
        assert policy.current_t() == pytest.approx(8.0)

    def test_resolution_cancels_timer_and_counts_avoided(self) -> None:
        policy = AdaptivePolicy()
        site = _FakeSite()
        policy.on_waits_started(site, ("w",))
        assert len(site.ctx.timers) == 1
        policy.on_wait_resolved(site, "w")
        assert site.ctx.timers[0][1].cancelled
        assert site.avoided == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"margin": 0.0},
            {"t_min": -1.0},
            {"t_min": 5.0, "t_max": 1.0},
            {"t_init": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs: dict[str, float]) -> None:
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(**kwargs)

    def test_delayed_t_must_be_non_negative(self) -> None:
        with pytest.raises(ConfigurationError):
            DelayedPolicy(-1.0)


def _sim_fingerprint(model: str, spec: WorkloadSpec, policy: str):  # noqa: ANN202
    run = provision_workload(
        get_variant(model), spec, policy=parse_policy_spec(policy)
    )
    run.run_to_quiescence(max_events=2_000_000)
    outcome = run.summarize()
    assert outcome.soundness_violations == 0
    from repro.obs.spans import build_spans

    spans = tuple(
        (span.initiator, span.outcome.value, span.probes_sent, span.end_time)
        for span in build_spans(run.system.simulator.tracer)
    )
    return outcome.declarations, outcome.first_declaration_at, spans


class TestTraceDeterminism:
    """Same spec + same policy -> byte-identical span trace on the sim."""

    @pytest.mark.parametrize(
        "policy", ["immediate", "delayed/T=2", "adaptive"]
    )
    def test_basic_random_policy_runs_are_reproducible(self, policy: str) -> None:
        spec = WorkloadSpec(family="random", n=8, seed=3, duration=40.0)
        first = _sim_fingerprint("basic", spec, policy)
        second = _sim_fingerprint("basic", spec, policy)
        assert first == second

    def test_adaptive_ddb_runs_are_reproducible(self) -> None:
        spec = WorkloadSpec(family="ddb-mix", n=3, seed=1)
        first = _sim_fingerprint("ddb", spec, "adaptive")
        second = _sim_fingerprint("ddb", spec, "adaptive")
        assert first == second


class TestAdaptiveConformanceSim:
    """The sim-transport lane of the three-transport adaptive matrix."""

    @pytest.mark.parametrize("model", ["basic", "ddb", "ormodel"])
    def test_conformance_deadlock_detected_soundly(self, model: str) -> None:
        from repro.core.conformance import conformance_workload

        spec = conformance_workload(model, "deadlock")
        run = provision_workload(
            get_variant(model), spec, policy=parse_policy_spec("adaptive")
        )
        run.run_to_quiescence()
        outcome = run.summarize()
        assert outcome.declarations > 0
        assert outcome.soundness_violations == 0
        assert outcome.complete

    @pytest.mark.parametrize("model", ["basic", "ddb", "ormodel"])
    def test_conformance_clean_stays_silent(self, model: str) -> None:
        from repro.core.conformance import conformance_workload

        spec = conformance_workload(model, "clean")
        run = provision_workload(
            get_variant(model), spec, policy=parse_policy_spec("adaptive")
        )
        run.run_to_quiescence()
        outcome = run.summarize()
        assert outcome.declarations == 0
        assert outcome.soundness_violations == 0
