"""Cross-variant conformance: every registered variant, both scenarios.

This suite is the demonstration of the extension contract: it names no
variant explicitly, so a newly registered detector is picked up and held
to the same bar (declare on a genuine deadlock, stay silent on a clean
run, zero soundness violations either way) without any test edits.
"""

from __future__ import annotations

import pytest

from repro.core import CONFORMANCE_SCENARIOS, all_variants, get_variant
from repro.errors import ConfigurationError


def _variant_ids() -> list[str]:
    return [variant.name for variant in all_variants()]


@pytest.mark.parametrize("name", _variant_ids())
class TestEveryVariant:
    def test_deadlock_scenario_declares_soundly_and_completely(
        self, name: str
    ) -> None:
        variant = get_variant(name)
        outcome = variant.conformance("deadlock", 0)
        assert outcome.variant == name
        assert outcome.scenario == "deadlock"
        assert outcome.declarations > 0, f"{name} missed a genuine deadlock"
        assert outcome.soundness_violations == 0
        if variant.capabilities.has_completeness_report:
            assert outcome.complete is True
            assert outcome.undetected_components == 0
        else:
            assert outcome.complete is None

    def test_clean_scenario_stays_silent(self, name: str) -> None:
        outcome = get_variant(name).conformance("clean", 0)
        assert outcome.scenario == "clean"
        assert outcome.declarations == 0, f"{name} declared on a clean run"
        assert outcome.soundness_violations == 0

    def test_deadlock_outcome_is_seed_independent(self, name: str) -> None:
        first = get_variant(name).conformance("deadlock", 1)
        second = get_variant(name).conformance("deadlock", 2)
        assert first.declarations > 0
        assert second.declarations > 0
        assert first.soundness_violations == second.soundness_violations == 0

    def test_unknown_scenario_is_rejected(self, name: str) -> None:
        with pytest.raises(ConfigurationError, match="no conformance scenario"):
            get_variant(name).conformance("no-such-scenario", 0)


def test_scenario_names_are_the_shared_contract() -> None:
    assert CONFORMANCE_SCENARIOS == ("deadlock", "clean")
