"""The detector-variant registry: lookup, ordering, and extension."""

from __future__ import annotations

import pytest

from repro.core import (
    ConformanceOutcome,
    DetectorVariant,
    VariantCapabilities,
    all_variants,
    get_variant,
    overlay_variants,
    register,
    variant_names,
    variants_for_scenario,
)
from repro.core import registry
from repro.errors import ConfigurationError

#: every built-in, in the registration order the sweep contract fixes.
BUILTIN_NAMES = (
    "basic",
    "ormodel",
    "ddb",
    "centralized",
    "pathpush",
    "timeout",
    "snapshot",
)


class TestLookup:
    def test_builtins_register_in_contract_order(self) -> None:
        assert variant_names() == BUILTIN_NAMES

    def test_get_variant_returns_the_registered_record(self) -> None:
        basic = get_variant("basic")
        assert basic.name == "basic"
        assert basic is get_variant("basic")
        assert basic in all_variants()

    def test_unknown_name_lists_the_registry(self) -> None:
        with pytest.raises(ConfigurationError) as excinfo:
            get_variant("nope")
        message = str(excinfo.value)
        assert "unknown detector variant 'nope'" in message
        for name in BUILTIN_NAMES:
            assert name in message

    def test_overlay_order_is_the_e8_detector_index_contract(self) -> None:
        # sweep's e8 grid indexes detectors as 0 = cmh, i >= 1 = this order.
        assert tuple(v.name for v in overlay_variants()) == (
            "centralized",
            "pathpush",
            "timeout",
            "snapshot",
        )
        assert all(v.capabilities.kind == "overlay" for v in overlay_variants())

    def test_every_variant_has_a_coherent_capability_record(self) -> None:
        for variant in all_variants():
            assert variant.capabilities.kind in ("protocol", "overlay")
            assert variant.capabilities.model in ("basic", "ormodel", "ddb")
            assert variant.capabilities.oracle_criterion
            if variant.capabilities.taxonomy is not None:
                taxonomy = variant.capabilities.taxonomy
                assert len(taxonomy.endpoint_keys) == 2
                assert taxonomy.edge_keys

    def test_variants_for_scenario(self) -> None:
        assert tuple(v.name for v in variants_for_scenario("ddb-ring")) == ("ddb",)
        assert tuple(v.name for v in variants_for_scenario("cycle")) == ("basic",)
        names = {v.name for v in variants_for_scenario("baseline-random")}
        assert names == {"basic", "centralized", "pathpush", "timeout", "snapshot"}
        assert variants_for_scenario("no-such-scenario") == ()


def _toy_variant(name: str) -> DetectorVariant:
    return DetectorVariant(
        name=name,
        title="toy",
        capabilities=VariantCapabilities(
            model="basic",
            kind="overlay",
            oracle_criterion="always",
            scenarios=("toy-scenario",),
        ),
        build=lambda **kwargs: None,
        conformance=lambda scenario, seed: ConformanceOutcome(
            variant=name,
            scenario=scenario,
            declarations=0,
            soundness_violations=0,
            complete=True,
        ),
    )


class TestRegistration:
    def test_duplicate_name_is_rejected(self) -> None:
        with pytest.raises(
            ConfigurationError, match="'basic' is already registered"
        ):
            register(_toy_variant("basic"))
        assert variant_names() == BUILTIN_NAMES

    def test_third_party_registration_is_one_call(self) -> None:
        # the extension contract: a new variant needs only its own module
        # plus one register() call -- every consumer then sees it.
        variant = _toy_variant("toy")
        try:
            assert register(variant) is variant
            assert get_variant("toy") is variant
            assert variant_names() == BUILTIN_NAMES + ("toy",)
            assert overlay_variants()[-1] is variant
            assert variants_for_scenario("toy-scenario") == (variant,)
        finally:
            registry._REGISTRY.pop("toy", None)
        assert variant_names() == BUILTIN_NAMES
