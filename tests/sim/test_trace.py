"""Unit tests for the tracer."""

from __future__ import annotations

import pytest

from repro.sim.trace import TraceEvent, Tracer


class TestTracer:
    def test_records_events(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "a.b", x=1)
        tracer.record(2.0, "a.c", x=2)
        assert len(tracer) == 2
        assert tracer.events("a.b")[0]["x"] == 1

    def test_category_filter_is_exact(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "a.b")
        tracer.record(1.0, "a.b.c")
        assert len(tracer.events("a.b")) == 1

    def test_prefix_filter(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "a.b")
        tracer.record(1.0, "a.b.c")
        tracer.record(1.0, "z")
        assert len(tracer.events_with_prefix("a.b")) == 2

    def test_disabled_tracer_records_nothing(self) -> None:
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "a")
        assert len(tracer) == 0

    def test_subscribers_fire_even_when_disabled(self) -> None:
        tracer = Tracer(enabled=False)
        seen: list[TraceEvent] = []
        tracer.subscribe(seen.append)
        tracer.record(1.0, "a", k="v")
        assert len(tracer) == 0
        assert len(seen) == 1
        assert seen[0]["k"] == "v"

    def test_unsubscribe_stops_delivery(self) -> None:
        tracer = Tracer()
        seen: list[TraceEvent] = []
        tracer.subscribe(seen.append)
        tracer.record(1.0, "a")
        tracer.unsubscribe(seen.append)
        tracer.record(2.0, "b")
        assert [event.category for event in seen] == ["a"]

    def test_unsubscribe_unknown_callback_raises(self) -> None:
        tracer = Tracer()
        with pytest.raises(ValueError, match="not subscribed"):
            tracer.unsubscribe(lambda event: None)

    def test_subscribed_context_manager_detaches(self) -> None:
        tracer = Tracer()
        seen: list[TraceEvent] = []
        with tracer.subscribed(seen.append):
            tracer.record(1.0, "inside")
        tracer.record(2.0, "outside")
        assert [event.category for event in seen] == ["inside"]

    def test_subscribed_detaches_on_error(self) -> None:
        tracer = Tracer()
        seen: list[TraceEvent] = []
        with pytest.raises(RuntimeError):
            with tracer.subscribed(seen.append):
                raise RuntimeError("boom")
        tracer.record(1.0, "after")
        assert seen == []

    def test_idle_and_wants_track_every_transition(self) -> None:
        # the precomputed fast-path flags behind wants()/record(): fully
        # idle -> category-scoped -> wildcard -> enabled, and back.
        tracer = Tracer(enabled=False)
        assert tracer.idle
        assert not tracer.wants("a")

        listener = lambda event: None  # noqa: E731
        tracer.subscribe(listener, categories=("a",))
        assert not tracer.idle
        assert tracer.wants("a") and not tracer.wants("b")

        wildcard = lambda event: None  # noqa: E731
        tracer.subscribe(wildcard)
        assert tracer.wants("b")  # wildcard sees everything
        tracer.unsubscribe(wildcard)
        assert not tracer.wants("b")

        tracer.unsubscribe(listener)
        assert tracer.idle

        tracer.enabled = True
        assert not tracer.idle and tracer.wants("anything")
        tracer.enabled = False
        assert tracer.idle

    def test_unwatched_category_is_dropped_not_buffered(self) -> None:
        # the cold-subscribed regime: recording a category nobody watches
        # must neither buffer the event nor call any subscriber.
        tracer = Tracer(enabled=False)
        seen: list[TraceEvent] = []
        tracer.subscribe(seen.append, categories=("watched",))
        tracer.record(1.0, "unwatched", x=1)
        tracer.record(2.0, "watched", x=2)
        assert len(tracer) == 0
        assert [event.category for event in seen] == ["watched"]

    def test_empty_category_subscription_is_rejected(self) -> None:
        tracer = Tracer()
        with pytest.raises(ValueError, match="non-empty"):
            tracer.subscribe(lambda event: None, categories=())

    def test_clear(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_iteration(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(2.0, "b")
        assert [event.category for event in tracer] == ["a", "b"]


class TestRng:
    def test_derive_seed_stable(self) -> None:
        from repro.sim.rng import derive_seed

        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_registry_memoises_streams(self) -> None:
        from repro.sim.rng import RngRegistry

        registry = RngRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_fork_is_independent_and_reproducible(self) -> None:
        from repro.sim.rng import RngRegistry

        first = RngRegistry(0).fork("rep1").stream("x").random()
        second = RngRegistry(0).fork("rep1").stream("x").random()
        other = RngRegistry(0).fork("rep2").stream("x").random()
        assert first == second
        assert first != other
