"""The hot-path optimisations change no observable behaviour.

The engine has three execution paths (the tight quiescence loop, the
generic budget/deadline loop, and ``step()``), plus a profiled variant via
the precomputed dispatch.  Every path must execute the same events in the
same ``(time, sequence)`` order and produce **byte-identical** structured
traces -- that equivalence is what licenses optimising any of them.
"""

from __future__ import annotations

import pytest

from repro.basic.system import BasicSystem
from repro.obs.export import events_to_jsonl
from repro.obs.profile import profiling
from repro.sim.simulator import Simulator
from repro.workloads.scenarios import schedule_cycle, schedule_figure_eight


def _cycle_system(n: int = 6) -> BasicSystem:
    system = BasicSystem(n_vertices=n, seed=7)
    schedule_cycle(system, list(range(n)), gap=0.3)
    return system


def _trace_bytes(system: BasicSystem) -> bytes:
    return events_to_jsonl(system.simulator.tracer).encode("utf-8")


class TestBitIdenticalTraces:
    def test_tight_loop_matches_budgeted_loop(self) -> None:
        tight = _cycle_system()
        tight.simulator.run()  # until=None, max_events=None: tight loop
        budgeted = _cycle_system()
        budgeted.run_to_quiescence(max_events=100_000)  # generic loop
        assert _trace_bytes(tight) == _trace_bytes(budgeted)
        assert tight.simulator.events_executed == budgeted.simulator.events_executed

    def test_step_loop_matches_run(self) -> None:
        stepped = _cycle_system()
        while stepped.simulator.step():
            pass
        ran = _cycle_system()
        ran.run_to_quiescence()
        assert _trace_bytes(stepped) == _trace_bytes(ran)

    def test_profiled_run_matches_unprofiled(self) -> None:
        # A sample period beyond the event count keeps the profiler from
        # adding profile.queue.sampled events; everything else about a
        # profiled run must be bit-identical to an unprofiled one.
        plain = _cycle_system()
        plain.run_to_quiescence()
        profiled = _cycle_system()
        with profiling(profiled.simulator, sample_every=10_000_000):
            profiled.run_to_quiescence()
        assert _trace_bytes(plain) == _trace_bytes(profiled)

    def test_deadline_clamp_unchanged(self) -> None:
        deadline = _cycle_system()
        deadline.run(until=2.0)
        assert deadline.simulator.now == 2.0
        reference = _cycle_system()
        while True:
            next_time = reference.simulator.queue.next_time
            if next_time is None or next_time > 2.0:
                break
            reference.simulator.step()
        events = deadline.simulator.tracer.events()
        assert [e.category for e in events] == [
            e.category for e in reference.simulator.tracer.events()
        ]

    def test_figure_eight_traces_identical_across_paths(self) -> None:
        def build() -> BasicSystem:
            system = BasicSystem(n_vertices=7, seed=3)
            schedule_figure_eight(system, shared=0, left=[1, 2, 3], right=[4, 5, 6])
            return system

        first = build()
        first.run_to_quiescence()
        second = build()
        second.simulator.run()
        assert _trace_bytes(first) == _trace_bytes(second)


class TestLoopSemantics:
    def test_max_events_budget_is_exact(self) -> None:
        simulator = Simulator(seed=0)
        fired: list[int] = []
        for i in range(10):
            simulator.schedule(float(i), lambda i=i: fired.append(i))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        simulator.run(max_events=0)
        assert fired == [0, 1, 2, 3]
        simulator.run()
        assert fired == list(range(10))

    def test_cancelled_events_skipped_in_tight_loop(self) -> None:
        simulator = Simulator(seed=0)
        fired: list[str] = []
        keep = simulator.schedule(1.0, lambda: fired.append("keep"))
        drop = simulator.schedule(0.5, lambda: fired.append("drop"))
        drop.cancel()
        simulator.run()
        assert fired == ["keep"]
        assert not keep.cancelled
        assert simulator.events_executed == 1

    def test_until_with_empty_queue_advances_clock(self) -> None:
        simulator = Simulator(seed=0)
        simulator.run(until=5.0)
        assert simulator.now == 5.0

    def test_mid_run_profiler_attach_is_honoured(self) -> None:
        # The dispatch is precomputed on assignment; re-assignment from
        # inside an event must swap it for the remainder of the run.
        from repro.obs.profile import SimulatorProfiler

        simulator = Simulator(seed=0)
        profiler = SimulatorProfiler(simulator, sample_every=1_000_000)
        simulator.schedule(1.0, profiler.attach)
        simulator.schedule(2.0, lambda: None)
        simulator.schedule(3.0, lambda: None)
        simulator.run()
        report = profiler.report()
        assert report.events == 2  # the two events after the attach


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_events_executed_deterministic(seed: int) -> None:
    runs = []
    for _ in range(2):
        system = BasicSystem(n_vertices=5, seed=seed)
        schedule_cycle(system, list(range(5)))
        system.run_to_quiescence()
        runs.append((system.simulator.events_executed, _trace_bytes(system)))
    assert runs[0] == runs[1]
