"""Unit tests for the Process actor base class."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Echo(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.seen: list[object] = []

    def on_message(self, sender, message):
        self.seen.append((sender, message))


class TestProcess:
    def test_ctx_before_registration_raises_configuration_error(self) -> None:
        process = Echo("a")
        with pytest.raises(ConfigurationError, match=r"process 'a' is not registered"):
            _ = process.ctx

    def test_send_before_registration_raises_configuration_error(self) -> None:
        process = Echo("a")
        with pytest.raises(ConfigurationError, match=r"process 'a' is not registered"):
            process.send("b", "hello")

    def test_now_before_registration_raises_configuration_error(self) -> None:
        process = Echo("a")
        with pytest.raises(ConfigurationError, match=r"register it"):
            _ = process.now

    def test_error_names_the_offending_pid(self) -> None:
        with pytest.raises(ConfigurationError, match=r"process 17"):
            Echo(17).send("b", "x")

    def test_registered_flag_flips_at_registration(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        process = Echo("a")
        assert not process.registered
        network.register(process)
        assert process.registered
        assert process.ctx.node_id == "a"

    def test_now_mirrors_simulator_clock(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        process = Echo("a")
        network.register(process)
        simulator.schedule(4.0, lambda: None)
        simulator.run()
        assert process.now == 4.0

    def test_base_on_message_is_abstract(self) -> None:
        process = Process("a")
        with pytest.raises(NotImplementedError):
            process.on_message("b", "x")

    def test_repr_includes_pid(self) -> None:
        assert "'a'" in repr(Echo("a"))

    def test_string_pids_work(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        alpha = Echo("alpha")
        beta = Echo("beta")
        network.register(alpha)
        network.register(beta)
        alpha.send("beta", 42)
        simulator.run()
        assert beta.seen == [("alpha", 42)]

    def test_network_process_lookup(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        process = Echo("a")
        network.register(process)
        assert network.process("a") is process
        assert network.process_ids == ["a"]
