"""Unit tests for the Process actor base class."""

from __future__ import annotations

import pytest

from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Echo(Process):
    def __init__(self, pid, simulator):
        super().__init__(pid, simulator)
        self.seen: list[object] = []

    def on_message(self, sender, message):
        self.seen.append((sender, message))


class TestProcess:
    def test_network_property_before_attach_raises(self) -> None:
        process = Echo("a", Simulator())
        with pytest.raises(RuntimeError):
            _ = process.network

    def test_send_before_attach_raises(self) -> None:
        process = Echo("a", Simulator())
        with pytest.raises(RuntimeError):
            process.send("b", "hello")

    def test_now_mirrors_simulator_clock(self) -> None:
        simulator = Simulator()
        process = Echo("a", simulator)
        simulator.schedule(4.0, lambda: None)
        simulator.run()
        assert process.now == 4.0

    def test_base_on_message_is_abstract(self) -> None:
        simulator = Simulator()
        process = Process("a", simulator)
        with pytest.raises(NotImplementedError):
            process.on_message("b", "x")

    def test_repr_includes_pid(self) -> None:
        assert "'a'" in repr(Echo("a", Simulator()))

    def test_string_pids_work(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        alpha = Echo("alpha", simulator)
        beta = Echo("beta", simulator)
        network.register(alpha)
        network.register(beta)
        alpha.send("beta", 42)
        simulator.run()
        assert beta.seen == [("alpha", 42)]

    def test_network_process_lookup(self) -> None:
        simulator = Simulator()
        network = Network(simulator)
        process = Echo("a", simulator)
        network.register(process)
        assert network.process("a") is process
        assert network.process_ids == ["a"]
