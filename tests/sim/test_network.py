"""Unit tests for the FIFO network: delivery, ordering, delay models."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.network import ExponentialDelay, FixedDelay, Network, UniformDelay
from repro.sim.process import Process
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class Ping:
    payload: int


class Recorder(Process):
    """Test process that records (time, sender, message) for every delivery."""

    def __init__(self, pid) -> None:
        super().__init__(pid)
        self.received: list[tuple[float, object, object]] = []

    def on_message(self, sender, message) -> None:
        self.received.append((self.now, sender, message))


def make_world(delay_model=None, fifo: bool = True, seed: int = 0, n: int = 3):
    simulator = Simulator(seed=seed)
    network = Network(simulator, delay_model=delay_model, fifo=fifo)
    processes = [Recorder(i) for i in range(n)]
    for process in processes:
        network.register(process)
    return simulator, network, processes


class TestDelivery:
    def test_message_arrives_after_fixed_delay(self) -> None:
        simulator, _, processes = make_world(FixedDelay(2.0))
        processes[0].send(1, Ping(7))
        simulator.run()
        assert processes[1].received == [(2.0, 0, Ping(7))]

    def test_send_to_unknown_process_raises(self) -> None:
        simulator, network, _ = make_world()
        with pytest.raises(SimulationError):
            network.send(0, 99, Ping(0))

    def test_duplicate_registration_raises(self) -> None:
        simulator, network, _ = make_world()
        with pytest.raises(SimulationError):
            network.register(Recorder(0))

    def test_message_counters(self) -> None:
        simulator, _, processes = make_world()
        processes[0].send(1, Ping(1))
        processes[0].send(2, Ping(2))
        simulator.run()
        metrics = simulator.metrics
        assert metrics.counter_value("net.messages.sent") == 2
        assert metrics.counter_value("net.messages.delivered") == 2
        assert metrics.counter_value("net.messages.sent.Ping") == 2

    def test_trace_records_send_and_delivery(self) -> None:
        simulator, _, processes = make_world()
        processes[0].send(1, Ping(5))
        simulator.run()
        assert len(simulator.tracer.events("net.sent")) == 1
        assert len(simulator.tracer.events("net.delivered")) == 1


class TestFifoOrdering:
    def test_fifo_preserved_under_random_delays(self) -> None:
        simulator, _, processes = make_world(ExponentialDelay(mean=5.0), seed=3)
        for i in range(50):
            processes[0].send(1, Ping(i))
        simulator.run()
        payloads = [message.payload for _, _, message in processes[1].received]
        assert payloads == list(range(50))

    def test_fifo_applies_per_channel_not_globally(self) -> None:
        # Messages on different channels may overtake each other freely.
        simulator, _, processes = make_world(FixedDelay(1.0))
        processes[0].send(2, Ping(0))
        processes[1].send(2, Ping(1))
        simulator.run()
        assert len(processes[2].received) == 2

    def test_non_fifo_mode_can_reorder(self) -> None:
        # With fifo=False and wildly varying delays, at least one channel
        # reorders for this seed.  (The ablation tests rely on this.)
        for seed in range(20):
            simulator, _, processes = make_world(
                ExponentialDelay(mean=5.0), fifo=False, seed=seed
            )
            for i in range(30):
                processes[0].send(1, Ping(i))
            simulator.run()
            payloads = [m.payload for _, _, m in processes[1].received]
            if payloads != sorted(payloads):
                return
        pytest.fail("no reordering observed across 20 seeds with fifo disabled")

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_fifo_property_any_seed(self, seed: int) -> None:
        simulator, _, processes = make_world(ExponentialDelay(mean=2.0), seed=seed)
        for i in range(20):
            processes[0].send(1, Ping(i))
            processes[1].send(0, Ping(100 + i))
        simulator.run()
        assert [m.payload for _, _, m in processes[1].received] == list(range(20))
        assert [m.payload for _, _, m in processes[0].received] == list(range(100, 120))


class TestDelayModels:
    def test_fixed_delay_validation(self) -> None:
        with pytest.raises(SimulationError):
            FixedDelay(-1.0)

    def test_uniform_delay_bounds(self) -> None:
        model = UniformDelay(1.0, 3.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 3.0

    def test_uniform_delay_validation(self) -> None:
        with pytest.raises(SimulationError):
            UniformDelay(3.0, 1.0)
        with pytest.raises(SimulationError):
            UniformDelay(-1.0, 1.0)

    def test_exponential_delay_positive(self) -> None:
        model = ExponentialDelay(mean=2.0)
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(s >= 0 for s in samples)
        assert 1.0 < sum(samples) / len(samples) < 3.0

    def test_exponential_delay_validation(self) -> None:
        with pytest.raises(SimulationError):
            ExponentialDelay(mean=0.0)
