"""Unit tests for counters, histograms, gauges, and time series."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero_and_increments(self) -> None:
        counter = Counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_cannot_decrease(self) -> None:
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestHistogram:
    def test_quantiles_on_known_data(self) -> None:
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.mean == pytest.approx(50.5)

    def test_summary_fields(self) -> None:
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_histogram_raises(self) -> None:
        with pytest.raises(ValueError):
            Histogram("h").quantile(0.5)
        with pytest.raises(ValueError):
            _ = Histogram("h").mean

    def test_invalid_quantile_rejected(self) -> None:
        histogram = Histogram("h")
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_nan_rejected(self) -> None:
        with pytest.raises(ValueError):
            Histogram("h").record(float("nan"))

    def test_recording_after_quantile_query(self) -> None:
        histogram = Histogram("h")
        histogram.record(5.0)
        assert histogram.quantile(0.5) == 5.0
        histogram.record(1.0)
        assert histogram.quantile(0.0) == 1.0

    def test_values_returns_a_fresh_copy(self) -> None:
        # regression: mutating the returned list must not corrupt the
        # histogram's backing storage
        histogram = Histogram("h")
        histogram.record(2.0)
        histogram.record(1.0)
        values = histogram.values
        values.append(99.0)
        values.clear()
        assert histogram.count == 2
        assert sorted(histogram.values) == [1.0, 2.0]
        assert histogram.values is not histogram.values

    def test_values_order_not_guaranteed_after_quantile(self) -> None:
        # documented behaviour: quantile() may sort the backing list in
        # place, so values reflects sorted order afterwards -- multiset
        # content is what is guaranteed, not recording order
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.record(value)
        histogram.quantile(0.5)
        assert histogram.values == [1.0, 2.0, 3.0]

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
    def test_quantile_bounds_property(self, values: list[float]) -> None:
        histogram = Histogram("h")
        for value in values:
            histogram.record(value)
        assert histogram.quantile(0.0) == min(values)
        assert histogram.quantile(1.0) == max(values)
        assert min(values) <= histogram.quantile(0.5) <= max(values)


class TestGauge:
    def test_set_and_read(self) -> None:
        gauge = Gauge("g")
        assert gauge.value == 0.0
        gauge.set(7.5)
        assert gauge.value == 7.5
        gauge.set(-2.0)  # unlike Counter, a gauge may go down
        assert gauge.value == -2.0

    def test_increment_and_decrement(self) -> None:
        gauge = Gauge("g")
        gauge.increment()
        gauge.increment(2.0)
        gauge.decrement(0.5)
        assert gauge.value == pytest.approx(2.5)

    def test_nan_rejected(self) -> None:
        with pytest.raises(ValueError):
            Gauge("g").set(float("nan"))


class TestTimeSeries:
    def test_records_time_value_pairs(self) -> None:
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        assert len(series) == 2
        assert [(sample.time, sample.value) for sample in series.samples] == [
            (0.0, 1.0),
            (2.0, 3.0),
        ]
        assert series.last is not None and series.last.value == 3.0

    def test_times_must_be_non_decreasing(self) -> None:
        series = TimeSeries("s")
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)  # equal times are fine (same virtual instant)
        with pytest.raises(ValueError):
            series.record(4.9, 3.0)

    def test_samples_is_a_copy(self) -> None:
        series = TimeSeries("s")
        series.record(1.0, 1.0)
        samples = series.samples
        samples.clear()
        assert len(series) == 1

    def test_empty_series(self) -> None:
        series = TimeSeries("s")
        assert len(series) == 0
        assert series.last is None
        assert series.samples == []


class TestMetricsRegistry:
    def test_counter_memoised(self) -> None:
        registry = MetricsRegistry()
        registry.counter("a").increment()
        assert registry.counter("a").value == 1

    def test_counter_value_defaults_to_zero(self) -> None:
        assert MetricsRegistry().counter_value("missing") == 0

    def test_snapshot_sorted(self) -> None:
        registry = MetricsRegistry()
        registry.counter("b").increment(2)
        registry.counter("a").increment(1)
        assert list(registry.snapshot().items()) == [("a", 1), ("b", 2)]

    def test_histogram_memoised(self) -> None:
        registry = MetricsRegistry()
        registry.histogram("h").record(1.0)
        assert registry.histogram("h").count == 1

    def test_gauge_and_timeseries_memoised(self) -> None:
        registry = MetricsRegistry()
        registry.gauge("g").set(4.0)
        assert registry.gauge("g").value == 4.0
        registry.timeseries("s").record(0.0, 1.0)
        assert len(registry.timeseries("s")) == 1
