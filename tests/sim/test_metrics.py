"""Unit tests for counters and histograms."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self) -> None:
        counter = Counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_cannot_decrease(self) -> None:
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestHistogram:
    def test_quantiles_on_known_data(self) -> None:
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.mean == pytest.approx(50.5)

    def test_summary_fields(self) -> None:
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_histogram_raises(self) -> None:
        with pytest.raises(ValueError):
            Histogram("h").quantile(0.5)
        with pytest.raises(ValueError):
            _ = Histogram("h").mean

    def test_invalid_quantile_rejected(self) -> None:
        histogram = Histogram("h")
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_nan_rejected(self) -> None:
        with pytest.raises(ValueError):
            Histogram("h").record(float("nan"))

    def test_recording_after_quantile_query(self) -> None:
        histogram = Histogram("h")
        histogram.record(5.0)
        assert histogram.quantile(0.5) == 5.0
        histogram.record(1.0)
        assert histogram.quantile(0.0) == 1.0

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
    def test_quantile_bounds_property(self, values: list[float]) -> None:
        histogram = Histogram("h")
        for value in values:
            histogram.record(value)
        assert histogram.quantile(0.0) == min(values)
        assert histogram.quantile(1.0) == max(values)
        assert min(values) <= histogram.quantile(0.5) <= max(values)


class TestMetricsRegistry:
    def test_counter_memoised(self) -> None:
        registry = MetricsRegistry()
        registry.counter("a").increment()
        assert registry.counter("a").value == 1

    def test_counter_value_defaults_to_zero(self) -> None:
        assert MetricsRegistry().counter_value("missing") == 0

    def test_snapshot_sorted(self) -> None:
        registry = MetricsRegistry()
        registry.counter("b").increment(2)
        registry.counter("a").increment(1)
        assert list(registry.snapshot().items()) == [("a", 1), ("b", 2)]

    def test_histogram_memoised(self) -> None:
        registry = MetricsRegistry()
        registry.histogram("h").record(1.0)
        assert registry.histogram("h").count == 1
