"""Unit tests for the event queue: ordering, stability, cancellation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueueOrdering:
    def test_pops_in_time_order(self) -> None:
        queue = EventQueue()
        fired: list[str] = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self) -> None:
        queue = EventQueue()
        fired: list[int] = []
        for i in range(10):
            queue.push(1.0, lambda i=i: fired.append(i))
        while queue:
            queue.pop().action()
        assert fired == list(range(10))

    def test_next_time_reports_earliest(self) -> None:
        queue = EventQueue()
        assert queue.next_time is None
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.next_time == 2.0

    def test_pop_empty_raises(self) -> None:
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self) -> None:
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestEventCancellation:
    def test_cancelled_event_is_skipped(self) -> None:
        queue = EventQueue()
        fired: list[str] = []
        handle = queue.push(1.0, lambda: fired.append("cancelled"))
        queue.push(2.0, lambda: fired.append("kept"))
        handle.cancel()
        while queue:
            queue.pop().action()
        assert fired == ["kept"]

    def test_cancel_is_idempotent(self) -> None:
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        assert not queue

    def test_cancelled_head_does_not_block_next_time(self) -> None:
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        head.cancel()
        assert queue.next_time == 2.0

    def test_len_counts_live_events_only(self) -> None:
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[3].cancel()
        assert len(queue) == 3

    def test_empty_queue_is_falsy(self) -> None:
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
