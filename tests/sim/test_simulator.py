"""Unit tests for the simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_schedule_runs_action_at_delay(self, simulator: Simulator) -> None:
        fired: list[float] = []
        simulator.schedule(2.5, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, simulator: Simulator) -> None:
        fired: list[float] = []
        simulator.schedule_at(4.0, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [4.0]

    def test_negative_delay_rejected(self, simulator: Simulator) -> None:
        with pytest.raises(SimulationError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, simulator: Simulator) -> None:
        simulator.schedule(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(4.0, lambda: None)

    def test_nested_scheduling(self, simulator: Simulator) -> None:
        fired: list[float] = []

        def outer() -> None:
            fired.append(simulator.now)
            simulator.schedule(1.0, lambda: fired.append(simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert fired == [1.0, 2.0]


class TestRunning:
    def test_run_until_stops_at_deadline(self, simulator: Simulator) -> None:
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            simulator.schedule(t, lambda t=t: fired.append(t))
        simulator.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert simulator.now == 2.0

    def test_run_until_advances_clock_even_when_idle(self, simulator: Simulator) -> None:
        simulator.run(until=100.0)
        assert simulator.now == 100.0

    def test_run_resumes_after_deadline(self, simulator: Simulator) -> None:
        fired: list[float] = []
        simulator.schedule(5.0, lambda: fired.append(simulator.now))
        simulator.run(until=2.0)
        assert fired == []
        simulator.run()
        assert fired == [5.0]

    def test_max_events_limits_execution(self, simulator: Simulator) -> None:
        fired: list[int] = []
        for i in range(10):
            simulator.schedule(float(i), lambda i=i: fired.append(i))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self, simulator: Simulator) -> None:
        assert simulator.step() is False

    def test_run_to_quiescence_raises_on_runaway(self, simulator: Simulator) -> None:
        def reschedule() -> None:
            simulator.schedule(1.0, reschedule)

        simulator.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run_to_quiescence(max_events=50)

    def test_events_executed_counter(self, simulator: Simulator) -> None:
        for t in (1.0, 2.0):
            simulator.schedule(t, lambda: None)
        simulator.run()
        assert simulator.events_executed == 2


class TestDeterminism:
    def test_same_seed_same_rng_draws(self) -> None:
        values_a = [Simulator(seed=7).rng.stream("x").random() for _ in range(1)]
        values_b = [Simulator(seed=7).rng.stream("x").random() for _ in range(1)]
        assert values_a == values_b

    def test_different_seeds_differ(self) -> None:
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=2).rng.stream("x").random()
        assert a != b

    def test_trace_records_with_current_time(self, simulator: Simulator) -> None:
        simulator.schedule(3.0, lambda: simulator.trace_now("test.cat", value=1))
        simulator.run()
        events = simulator.tracer.events("test.cat")
        assert len(events) == 1
        assert events[0].time == 3.0
        assert events[0]["value"] == 1
