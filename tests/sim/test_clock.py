"""Unit tests for the virtual clock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock


class TestClock:
    def test_starts_at_zero(self) -> None:
        assert Clock().now == 0.0

    def test_advances_forward(self) -> None:
        clock = Clock()
        clock.advance_to(5.0)
        assert clock.now == 5.0
        clock.advance_to(7.25)
        assert clock.now == 7.25

    def test_advancing_to_same_time_is_allowed(self) -> None:
        clock = Clock()
        clock.advance_to(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_cannot_move_backwards(self) -> None:
        clock = Clock()
        clock.advance_to(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.999)

    def test_repr_mentions_time(self) -> None:
        clock = Clock()
        clock.advance_to(1.5)
        assert "1.5" in repr(clock)
