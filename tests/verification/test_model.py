"""Unit tests for the pure-functional protocol model."""

from __future__ import annotations

import pytest

from repro.verification.model import (
    Deliver,
    Initiate,
    ModelState,
    Reply,
    Request,
    apply_action,
    enabled_actions,
    initial_state,
)


def drain(state: ModelState) -> ModelState:
    """Apply deliveries/scripted actions greedily until quiescent."""
    while True:
        actions = enabled_actions(state)
        if not actions:
            return state
        state = apply_action(state, actions[0])


class TestEdgeColours:
    def test_request_creates_grey_then_black(self) -> None:
        state = initial_state(2, [Request(0, (1,))])
        state = apply_action(state, Request(0, (1,)))
        assert state.edge_color(0, 1) == "grey"
        state = apply_action(state, Deliver(0, 1))
        assert state.edge_color(0, 1) == "black"

    def test_reply_whitens_then_deletes(self) -> None:
        state = initial_state(2, [Request(0, (1,)), Reply(1, 0)])
        state = apply_action(state, Request(0, (1,)))
        state = apply_action(state, Deliver(0, 1))
        state = apply_action(state, Reply(1, 0))
        assert state.edge_color(0, 1) == "white"
        state = apply_action(state, Deliver(1, 0))
        assert state.edge_color(0, 1) is None

    def test_reply_not_enabled_while_blocked(self) -> None:
        # 1 waits on 2, so G3 forbids its reply to 0 until 2 replies.
        script = [Request(1, (2,)), Request(0, (1,)), Reply(1, 0)]
        state = initial_state(3, script)
        state = apply_action(state, Request(1, (2,)))
        state = apply_action(state, Request(0, (1,)))
        state = apply_action(state, Deliver(0, 1))
        actions = enabled_actions(state)
        assert Reply(1, 0) not in actions
        # Deliveries remain available; the reply waits for G3.
        assert any(isinstance(a, Deliver) for a in actions)


class TestCycles:
    def test_dark_and_black_cycle_predicates(self) -> None:
        state = initial_state(2, [Request(0, (1,)), Request(1, (0,))])
        state = apply_action(state, Request(0, (1,)))
        state = apply_action(state, Request(1, (0,)))
        assert state.on_dark_cycle(0)
        assert not state.on_black_cycle(0)  # both edges still grey
        state = apply_action(state, Deliver(0, 1))
        state = apply_action(state, Deliver(1, 0))
        assert state.on_black_cycle(0)


class TestProbeSemantics:
    def test_initiation_sends_probe_per_outgoing_edge(self) -> None:
        state = initial_state(3, [Request(0, (1, 2)), Initiate(0)])
        state = apply_action(state, Request(0, (1, 2)))
        state = apply_action(state, Initiate(0))
        assert any(m[0] == "probe" for m in state.channel(0, 1))
        assert any(m[0] == "probe" for m in state.channel(0, 2))

    def test_non_meaningful_probe_dropped(self) -> None:
        # Deliver the probe before the request: FIFO would forbid this, but
        # the model allows choosing... actually channels are FIFO in the
        # model too (single queue), so construct via a *resolved* edge.
        script = [Request(0, (1,)), Initiate(0), Reply(1, 0)]
        state = initial_state(2, script)
        state = apply_action(state, Request(0, (1,)))
        state = apply_action(state, Deliver(0, 1))  # request received
        state = apply_action(state, Initiate(0))  # probe queued
        state = apply_action(state, Reply(1, 0))  # edge whitened
        state = apply_action(state, Deliver(0, 1))  # probe arrives: white
        # 1 no longer holds 0's request: probe not meaningful, no forward.
        assert state.channel(1, 0) == (("rep", 1),)

    def test_two_cycle_detects_in_greedy_run(self) -> None:
        script = [Request(0, (1,)), Request(1, (0,)), Initiate(0)]
        state = drain(initial_state(2, script))
        assert (0, 1) in state.declared
        assert (0, 1) in state.obliged

    def test_stale_sequence_ignored(self) -> None:
        script = [
            Request(0, (1,)),
            Request(1, (0,)),
            Initiate(0),
            Initiate(0),
        ]
        state = drain(initial_state(2, script))
        # Only the latest computation (sequence 2) may declare.
        assert (0, 2) in state.declared

    def test_hashability_and_equality(self) -> None:
        a = initial_state(2, [Request(0, (1,))])
        b = initial_state(2, [Request(0, (1,))])
        assert a == b
        assert hash(a) == hash(b)
        c = apply_action(a, Request(0, (1,)))
        assert c != a
