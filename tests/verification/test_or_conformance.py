"""Cross-implementation conformance for the OR model.

As with the basic model, the OR algorithm exists twice: the simulation
implementation (`repro.ormodel`) and the pure specification
(`repro.verification.or_model`).  Random scripts run through both under
synchronous semantics must agree exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._ids import VertexId
from repro.ormodel.system import OrSystem
from repro.verification import or_model
from repro.verification.or_model import (
    Deliver,
    GrantTo,
    InitiateOr,
    OrModelState,
    RequestAny,
    ScriptAction,
)

N_VERTICES = 4


def drain(state: OrModelState) -> OrModelState:
    while True:
        deliveries = [
            Deliver(source=key[0], target=key[1])
            for key, queue in state.channels
            if queue
        ]
        if not deliveries:
            return state
        state = or_model.apply_action(state, deliveries[0])


def apply_sync(state: OrModelState, action: ScriptAction) -> OrModelState:
    return drain(or_model.apply_action(state, action))


def legal_actions(state: OrModelState) -> list[ScriptAction]:
    candidates: list[ScriptAction] = []
    for source in range(N_VERTICES):
        others = [t for t in range(N_VERTICES) if t != source]
        if not state.dependents[source]:
            for target in others:
                candidates.append(RequestAny(source, (target,)))
            candidates.append(RequestAny(source, tuple(others[:2])))
            for requester in sorted(state.pending_grants[source]):
                candidates.append(GrantTo(source, requester))
        else:
            candidates.append(InitiateOr(source))
    return candidates


@st.composite
def scripts(draw) -> list[ScriptAction]:
    state = or_model.initial_state(N_VERTICES, [])
    script: list[ScriptAction] = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        options = legal_actions(state)
        if not options:
            break
        action = draw(st.sampled_from(options))
        script.append(action)
        state = apply_sync(state, action)
    return script


def run_in_model(script: list[ScriptAction]) -> OrModelState:
    state = or_model.initial_state(N_VERTICES, [])
    for action in script:
        state = apply_sync(state, action)
    return state


def run_in_simulator(script: list[ScriptAction]) -> OrSystem:
    system = OrSystem(
        n_vertices=N_VERTICES,
        auto_grant=False,
        auto_initiate=False,
        strict=False,
    )
    for index, action in enumerate(script):
        time = 10.0 * (index + 1)
        if isinstance(action, RequestAny):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).request_any(
                    [VertexId(t) for t in a.targets]
                ),
            )
        elif isinstance(action, GrantTo):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).grant_to(
                    VertexId(a.requester)
                ),
            )
        elif isinstance(action, InitiateOr):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).initiate_detection(),
            )
    system.run_to_quiescence(max_events=100_000)
    return system


@given(scripts())
@settings(max_examples=50, deadline=None)
def test_or_model_and_simulator_agree(script: list[ScriptAction]) -> None:
    model_state = run_in_model(script)
    system = run_in_simulator(script)

    simulated_dependents = {
        (int(v), frozenset(int(t) for t in vertex.dependent_set))
        for v, vertex in system.vertices.items()
    }
    model_dependents = {
        (v, frozenset(int(t) for t in model_state.dependents[v]))
        for v in range(N_VERTICES)
    }
    assert simulated_dependents == model_dependents

    simulated_pending = {
        (int(v), frozenset(int(r) for r in vertex.pending_grants))
        for v, vertex in system.vertices.items()
    }
    model_pending = {
        (v, frozenset(int(r) for r in model_state.pending_grants[v]))
        for v in range(N_VERTICES)
    }
    assert simulated_pending == model_pending

    simulated_declared = {
        (int(d.vertex), d.tag.sequence) for d in system.declarations
    }
    assert simulated_declared == set(model_state.declared)
    assert system.soundness_violations == []
