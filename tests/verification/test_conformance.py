"""Cross-implementation conformance: pure model vs. simulation.

The repository deliberately contains the probe computation twice -- once as
the simulation implementation (`repro.basic`) and once as a pure-functional
specification (`repro.verification.model`).  These tests drive both with
the same randomly generated scripts under synchronous semantics (each
scripted action's messages fully drain before the next action) and require
exact agreement on:

* the final wait-for edges,
* which vertices hold which unanswered requests,
* the exact set of (initiator, sequence) computations that declared.

Divergence would mean one of the two implementations deviates from the
paper; hypothesis shrinks any counterexample to a minimal script.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._ids import VertexId
from repro.basic.initiation import ManualInitiation
from repro.basic.system import BasicSystem
from repro.verification import model
from repro.verification.model import (
    Deliver,
    Initiate,
    ModelState,
    Reply,
    Request,
    ScriptAction,
    initial_state,
)

N_VERTICES = 4


def drain_deliveries(state: ModelState) -> ModelState:
    """Deliver all in-flight messages (channel order is irrelevant for the
    final state under this synchronous regime because per-channel FIFO is
    preserved and handlers commute across channels at quiescence)."""
    while True:
        pending = [
            Deliver(source=key[0], target=key[1])
            for key, queue in state.channels
            if queue
        ]
        if not pending:
            return state
        state = model.apply_action(state, pending[0])


def apply_sync(state: ModelState, action: ScriptAction) -> ModelState:
    return drain_deliveries(model.apply_action(state, action))


def legal_actions(state: ModelState) -> list[ScriptAction]:
    """Script actions valid in a drained state (used by the generator)."""
    candidates: list[ScriptAction] = []
    for source in range(N_VERTICES):
        others = [t for t in range(N_VERTICES) if t != source]
        for target in others:
            if not state.edge_exists(source, target):
                candidates.append(Request(source, (target,)))
        pair = tuple(
            t for t in others if not state.edge_exists(source, t)
        )[:2]
        if len(pair) == 2:
            candidates.append(Request(source, pair))
        if not state.waiting_for[source]:
            for requester in sorted(state.holding_from[source]):
                candidates.append(Reply(source, int(requester)))
        candidates.append(Initiate(source))
    return candidates


@st.composite
def scripts(draw) -> list[ScriptAction]:
    """Generate a valid script by tracking state with the pure model."""
    state = initial_state(N_VERTICES, [])
    script: list[ScriptAction] = []
    length = draw(st.integers(min_value=1, max_value=10))
    for _ in range(length):
        action = draw(st.sampled_from(legal_actions(state)))
        script.append(action)
        state = apply_sync(state, action)
    return script


def run_in_model(script: list[ScriptAction]) -> ModelState:
    state = initial_state(N_VERTICES, [])
    for action in script:
        state = apply_sync(state, action)
    return state


def run_in_simulator(script: list[ScriptAction]) -> BasicSystem:
    system = BasicSystem(
        n_vertices=N_VERTICES,
        auto_reply=False,
        initiation=ManualInitiation(),
        strict=False,
    )
    # Space actions far apart so each one's messages drain before the next
    # (synchronous semantics, matching the model run).
    for index, action in enumerate(script):
        time = 10.0 * (index + 1)
        if isinstance(action, Request):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).request(
                    [VertexId(t) for t in a.targets]
                ),
            )
        elif isinstance(action, Reply):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).reply_to(VertexId(a.requester)),
            )
        elif isinstance(action, Initiate):
            system.simulator.schedule_at(
                time,
                lambda a=action: system.vertex(a.source).initiate_probe_computation(),
            )
    system.run_to_quiescence(max_events=100_000)
    return system


@given(scripts())
@settings(max_examples=60, deadline=None)
def test_model_and_simulator_agree(script: list[ScriptAction]) -> None:
    model_state = run_in_model(script)
    system = run_in_simulator(script)

    # Edges (who waits for whom).
    simulated_edges = {
        (int(v), int(t))
        for v, vertex in system.vertices.items()
        for t in vertex.pending_out
    }
    model_edges = {
        (v, int(t)) for v in range(N_VERTICES) for t in model_state.waiting_for[v]
    }
    assert simulated_edges == model_edges

    # Held (unanswered) requests.
    simulated_held = {
        (int(v), int(r))
        for v, vertex in system.vertices.items()
        for r in vertex.pending_in
    }
    model_held = {
        (v, int(r)) for v in range(N_VERTICES) for r in model_state.holding_from[v]
    }
    assert simulated_held == model_held

    # Declarations, as (initiator, sequence) pairs.
    simulated_declared = {(int(d.vertex), d.tag.sequence) for d in system.declarations}
    assert simulated_declared == set(model_state.declared)

    # Neither implementation may be unsound.
    assert system.soundness_violations == []


@given(scripts())
@settings(max_examples=40, deadline=None)
def test_model_declarations_always_sound_under_sync_semantics(
    script: list[ScriptAction],
) -> None:
    # QRP2 is asserted inside the model's transition function; reaching the
    # end without AssertionError is the property.
    state = run_in_model(script)
    # Declared computations are for initiators that were genuinely blocked.
    for vertex, _ in state.declared:
        assert state.waiting_for[vertex]
