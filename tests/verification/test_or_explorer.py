"""Exhaustive model checking of the OR/communication-model algorithm."""

from __future__ import annotations

import pytest

from repro.verification import or_model
from repro.verification.explorer import explore
from repro.verification.or_model import GrantTo, InitiateOr, RequestAny


def run(n: int, script, max_states: int = 400_000):
    return explore(n, script, max_states=max_states, semantics=or_model)


class TestOrDeadlockScenarios:
    def test_two_cycle_all_interleavings(self) -> None:
        result = run(
            2, [RequestAny(0, (1,)), RequestAny(1, (0,)), InitiateOr(0)]
        )
        assert result.ok, result.soundness_failures or result.completeness_failures
        assert (0, 1) in result.ever_declared

    def test_three_cycle(self) -> None:
        result = run(
            3,
            [
                RequestAny(0, (1,)),
                RequestAny(1, (2,)),
                RequestAny(2, (0,)),
                InitiateOr(2),
            ],
        )
        assert result.ok
        assert (2, 1) in result.ever_declared

    def test_knot_with_fan(self) -> None:
        # 0 waits any{1,2}; 1 and 2 wait any{0}: a genuine knot.
        result = run(
            3,
            [
                RequestAny(1, (0,)),
                RequestAny(2, (0,)),
                RequestAny(0, (1, 2)),
                InitiateOr(0),
            ],
        )
        assert result.ok
        assert (0, 1) in result.ever_declared

    def test_both_sides_initiate(self) -> None:
        result = run(
            2,
            [
                RequestAny(0, (1,)),
                RequestAny(1, (0,)),
                InitiateOr(0),
                InitiateOr(1),
            ],
        )
        assert result.ok
        assert {(0, 1), (1, 1)} <= result.ever_declared


class TestOrNonDeadlockScenarios:
    def test_active_alternative_never_declares(self) -> None:
        # 0 waits any{1, 2}; 1 waits any{0}; 2 stays active and never
        # grants in this script -- 0 is STILL not truly deadlocked (2 is
        # active), and in no interleaving may anything be declared.
        result = run(
            3,
            [
                RequestAny(0, (1, 2)),
                RequestAny(1, (0,)),
                InitiateOr(0),
                InitiateOr(1),
            ],
        )
        assert result.ok
        assert result.ever_declared == set()

    def test_granted_wait_never_declares(self) -> None:
        result = run(
            2,
            [
                RequestAny(0, (1,)),
                InitiateOr(0),
                GrantTo(1, 0),
            ],
        )
        assert result.ok
        assert result.ever_declared == set()

    def test_in_flight_grant_blocks_declaration_in_all_interleavings(self) -> None:
        # The FIFO-criticality scenario from the ablation suite, explored
        # exhaustively: g(0) waits on a(1); a grants, then a and x(2)
        # deadlock each other; g initiates.  In every interleaving the
        # reply chain behind the grant must NOT let g declare (the model's
        # channels are FIFO).
        result = run(
            3,
            [
                RequestAny(0, (1,)),
                GrantTo(1, 0),
                RequestAny(1, (2,)),
                RequestAny(2, (1,)),
                InitiateOr(0),
                InitiateOr(1),
            ],
        )
        assert result.ok, result.soundness_failures
        # g never declares; the genuine a<->x deadlock is declared.
        assert (0, 1) not in result.ever_declared
        assert (1, 1) in result.ever_declared

    def test_chain_into_active_never_declares(self) -> None:
        result = run(
            3,
            [RequestAny(0, (1,)), RequestAny(1, (2,)), InitiateOr(0)],
        )
        assert result.ok
        assert result.ever_declared == set()


class TestOrModelMechanics:
    def test_state_hashable(self) -> None:
        a = or_model.initial_state(2, [RequestAny(0, (1,))])
        b = or_model.initial_state(2, [RequestAny(0, (1,))])
        assert a == b and hash(a) == hash(b)

    def test_grant_requires_queued_request(self) -> None:
        state = or_model.initial_state(2, [GrantTo(1, 0)])
        assert or_model.enabled_actions(state) == []

    def test_initiate_requires_blocked(self) -> None:
        state = or_model.initial_state(2, [InitiateOr(0)])
        assert or_model.enabled_actions(state) == []

    def test_truly_deadlocked_channel_awareness(self) -> None:
        from dataclasses import replace

        state = or_model.initial_state(2, [])
        state = replace(
            state,
            dependents=(frozenset({1}), frozenset({0})),
        )
        assert state.truly_deadlocked(0)
        # Add an in-flight grant toward vertex 0: no longer deadlocked.
        state = state._push(1, 0, ("grant", 1))
        assert not state.truly_deadlocked(0)
