"""Tests for the trace-based invariant checkers."""

from __future__ import annotations

from repro.basic.system import BasicSystem
from repro.sim import categories
from repro.sim.network import ExponentialDelay
from repro.sim.trace import Tracer
from repro.verification.invariants import check_fifo, check_probe_edge_darkness
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_cycle


class TestFifoChecker:
    def test_clean_run_has_no_violations(self) -> None:
        system = BasicSystem(n_vertices=4, delay_model=ExponentialDelay(mean=2.0))
        schedule_cycle(system, [0, 1, 2, 3])
        system.run_to_quiescence()
        assert check_fifo(system.simulator.tracer) == []

    def test_detects_manufactured_reordering(self) -> None:
        tracer = Tracer()
        tracer.record(0.0, "net.sent", sender=0, destination=1, message="a")
        tracer.record(0.1, "net.sent", sender=0, destination=1, message="b")
        tracer.record(1.0, "net.delivered", sender=0, destination=1, message="b")
        tracer.record(1.1, "net.delivered", sender=0, destination=1, message="a")
        violations = check_fifo(tracer)
        assert violations
        assert "reordering" in violations[0]

    def test_detects_delivery_without_send(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "net.delivered", sender=0, destination=1, message="ghost")
        violations = check_fifo(tracer)
        assert violations
        assert "without send" in violations[0]


class TestProbeDarknessChecker:
    def test_clean_cycle_run(self) -> None:
        system = BasicSystem(n_vertices=5)
        schedule_cycle(system, [0, 1, 2, 3, 4])
        system.run_to_quiescence()
        assert check_probe_edge_darkness(system.simulator.tracer) == []

    def test_clean_random_run(self) -> None:
        system = BasicSystem(
            n_vertices=8, seed=3, delay_model=ExponentialDelay(mean=1.5)
        )
        RandomRequestWorkload(system, duration=40.0).start()
        system.run_to_quiescence(max_events=300_000)
        assert check_probe_edge_darkness(system.simulator.tracer) == []

    # The positive case (a genuine P1 breach is flagged) is exercised by
    # tests/ablation/test_fifo_requirement.py on the scripted phantom run.


class TestFifoInterleavedChannels:
    """check_fifo must keep per-channel state: globally interleaved traffic
    on independent channels is fine; only same-channel reordering counts."""

    def test_interleaved_channels_in_order_is_clean(self) -> None:
        tracer = Tracer()
        # Channels (0,1), (1,0) and (2,1) interleaved in global time; each
        # channel individually delivers in send order.
        tracer.record(0.0, categories.NET_SENT, sender=0, destination=1, message="a1")
        tracer.record(0.1, categories.NET_SENT, sender=1, destination=0, message="x1")
        tracer.record(0.2, categories.NET_SENT, sender=0, destination=1, message="a2")
        tracer.record(0.3, categories.NET_SENT, sender=2, destination=1, message="y1")
        tracer.record(0.4, categories.NET_DELIVERED, sender=2, destination=1, message="y1")
        tracer.record(0.5, categories.NET_DELIVERED, sender=0, destination=1, message="a1")
        tracer.record(0.6, categories.NET_SENT, sender=1, destination=0, message="x2")
        tracer.record(0.7, categories.NET_DELIVERED, sender=1, destination=0, message="x1")
        tracer.record(0.8, categories.NET_DELIVERED, sender=0, destination=1, message="a2")
        tracer.record(0.9, categories.NET_DELIVERED, sender=1, destination=0, message="x2")
        assert check_fifo(tracer) == []

    def test_equal_payloads_in_order_is_clean(self) -> None:
        # Matching is positional per channel, so repeated identical payloads
        # delivered in order must not confuse the checker.
        tracer = Tracer()
        for t in (0.0, 0.1):
            tracer.record(t, categories.NET_SENT, sender=0, destination=1, message="ping")
        for t in (1.0, 1.1):
            tracer.record(
                t, categories.NET_DELIVERED, sender=0, destination=1, message="ping"
            )
        assert check_fifo(tracer) == []

    def test_reordering_is_localised_to_the_offending_channel(self) -> None:
        tracer = Tracer()
        # Channel (0,1): reordered.  Channel (2,3): clean, interleaved with it.
        tracer.record(0.0, categories.NET_SENT, sender=0, destination=1, message="a")
        tracer.record(0.1, categories.NET_SENT, sender=2, destination=3, message="p")
        tracer.record(0.2, categories.NET_SENT, sender=0, destination=1, message="b")
        tracer.record(0.3, categories.NET_SENT, sender=2, destination=3, message="q")
        tracer.record(1.0, categories.NET_DELIVERED, sender=2, destination=3, message="p")
        tracer.record(1.1, categories.NET_DELIVERED, sender=0, destination=1, message="b")
        tracer.record(1.2, categories.NET_DELIVERED, sender=2, destination=3, message="q")
        tracer.record(1.3, categories.NET_DELIVERED, sender=0, destination=1, message="a")
        violations = check_fifo(tracer)
        # Positional matching flags both out-of-order deliveries on (0, 1)
        # and nothing on (2, 3).
        assert violations
        assert all("(0, 1)" in violation for violation in violations)
        assert not any("(2, 3)" in violation for violation in violations)


class TestProbeDarknessEdgeBranches:
    """Synthetic traces driving the interval logic of _edge_intervals /
    dark_throughout through its individual failure branches."""

    @staticmethod
    def _edge_lifecycle(
        tracer: Tracer,
        source: int,
        target: int,
        created: float,
        blackened: float,
        whitened: float | None = None,
        deleted: float | None = None,
    ) -> None:
        tracer.record(
            created, categories.BASIC_REQUEST_SENT, source=source, target=target
        )
        tracer.record(
            blackened, categories.BASIC_REQUEST_RECEIVED, source=source, target=target
        )
        if whitened is not None:
            # reply travels target -> source; invariants key it back to (source, target)
            tracer.record(
                whitened, categories.BASIC_REPLY_SENT, source=target, target=source
            )
        if deleted is not None:
            tracer.record(
                deleted, categories.BASIC_REPLY_RECEIVED, source=target, target=source
            )

    def test_edge_whitened_mid_flight_is_a_violation(self) -> None:
        # Probe sent at t=2 along (1, 2); the edge whitens at t=3 (reply
        # sent) while the probe is still in flight; meaningful receipt at
        # t=4 therefore breaks the P1 consequence.
        tracer = Tracer()
        self._edge_lifecycle(tracer, source=1, target=2, created=0.0, blackened=1.0,
                             whitened=3.0, deleted=5.0)
        tracer.record(2.0, categories.BASIC_PROBE_SENT, source=1, target=2, tag=7)
        tracer.record(
            4.0,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=7,
            meaningful=True,
        )
        violations = check_probe_edge_darkness(tracer)
        assert len(violations) == 1
        assert "P1 violated" in violations[0]
        assert "(1, 2)" in violations[0]

    def test_edge_dark_throughout_flight_is_clean(self) -> None:
        # Same trace shape, but the probe lands before the reply whitens
        # the edge: receipt at t=2.5 < whitened at t=3.
        tracer = Tracer()
        self._edge_lifecycle(tracer, source=1, target=2, created=0.0, blackened=1.0,
                             whitened=3.0, deleted=5.0)
        tracer.record(2.0, categories.BASIC_PROBE_SENT, source=1, target=2, tag=7)
        tracer.record(
            2.5,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=7,
            meaningful=True,
        )
        assert check_probe_edge_darkness(tracer) == []

    def test_probe_sent_before_edge_existed_is_a_violation(self) -> None:
        tracer = Tracer()
        self._edge_lifecycle(tracer, source=1, target=2, created=1.0, blackened=2.0)
        tracer.record(0.5, categories.BASIC_PROBE_SENT, source=1, target=2, tag=3)
        tracer.record(
            3.0,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=3,
            meaningful=True,
        )
        violations = check_probe_edge_darkness(tracer)
        assert len(violations) == 1
        assert "P1 violated" in violations[0]

    def test_meaningful_probe_without_send_is_a_violation(self) -> None:
        tracer = Tracer()
        self._edge_lifecycle(tracer, source=1, target=2, created=0.0, blackened=1.0)
        tracer.record(
            2.0,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=9,
            meaningful=True,
        )
        violations = check_probe_edge_darkness(tracer)
        assert len(violations) == 1
        assert "never sent" in violations[0]

    def test_recreated_edge_second_interval_covers_flight(self) -> None:
        # The edge (1, 2) lives twice.  The probe's flight falls entirely
        # inside the second lifetime, so the checker must scan the full
        # interval history rather than only the first incarnation.
        tracer = Tracer()
        self._edge_lifecycle(tracer, source=1, target=2, created=0.0, blackened=1.0,
                             whitened=2.0, deleted=3.0)
        self._edge_lifecycle(tracer, source=1, target=2, created=4.0, blackened=5.0)
        tracer.record(6.0, categories.BASIC_PROBE_SENT, source=1, target=2, tag=11)
        tracer.record(
            7.0,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=11,
            meaningful=True,
        )
        assert check_probe_edge_darkness(tracer) == []
