"""Tests for the trace-based invariant checkers."""

from __future__ import annotations

from repro.basic.system import BasicSystem
from repro.sim.network import ExponentialDelay
from repro.sim.trace import Tracer
from repro.verification.invariants import check_fifo, check_probe_edge_darkness
from repro.workloads.basic_random import RandomRequestWorkload
from repro.workloads.scenarios import schedule_cycle


class TestFifoChecker:
    def test_clean_run_has_no_violations(self) -> None:
        system = BasicSystem(n_vertices=4, delay_model=ExponentialDelay(mean=2.0))
        schedule_cycle(system, [0, 1, 2, 3])
        system.run_to_quiescence()
        assert check_fifo(system.simulator.tracer) == []

    def test_detects_manufactured_reordering(self) -> None:
        tracer = Tracer()
        tracer.record(0.0, "net.sent", sender=0, destination=1, message="a")
        tracer.record(0.1, "net.sent", sender=0, destination=1, message="b")
        tracer.record(1.0, "net.delivered", sender=0, destination=1, message="b")
        tracer.record(1.1, "net.delivered", sender=0, destination=1, message="a")
        violations = check_fifo(tracer)
        assert violations
        assert "reordering" in violations[0]

    def test_detects_delivery_without_send(self) -> None:
        tracer = Tracer()
        tracer.record(1.0, "net.delivered", sender=0, destination=1, message="ghost")
        violations = check_fifo(tracer)
        assert violations
        assert "without send" in violations[0]


class TestProbeDarknessChecker:
    def test_clean_cycle_run(self) -> None:
        system = BasicSystem(n_vertices=5)
        schedule_cycle(system, [0, 1, 2, 3, 4])
        system.run_to_quiescence()
        assert check_probe_edge_darkness(system.simulator.tracer) == []

    def test_clean_random_run(self) -> None:
        system = BasicSystem(
            n_vertices=8, seed=3, delay_model=ExponentialDelay(mean=1.5)
        )
        RandomRequestWorkload(system, duration=40.0).start()
        system.run_to_quiescence(max_events=300_000)
        assert check_probe_edge_darkness(system.simulator.tracer) == []

    # The positive case (a genuine P1 breach is flagged) is exercised by
    # tests/ablation/test_fifo_requirement.py on the scripted phantom run.
