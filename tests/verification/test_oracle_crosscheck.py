"""Cross-validation of the oracle's cycle detection against networkx."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._ids import VertexId
from repro.basic.graph import WaitForGraph
from repro.basic.system import BasicSystem
from repro.verification.oracle import independent_dark_cycle_vertices
from repro.workloads.basic_random import RandomRequestWorkload


def v(i: int) -> VertexId:
    return VertexId(i)


class TestAgreementOnConstructedGraphs:
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_random_dark_graphs(self, raw_edges: list[tuple[int, int]]) -> None:
        graph = WaitForGraph()
        seen: set[tuple[int, int]] = set()
        for a, b in raw_edges:
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            graph.create_edge(v(a), v(b))
        assert graph.vertices_on_dark_cycles() == independent_dark_cycle_vertices(graph)

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 2)),
            max_size=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_random_coloured_graphs(self, raw: list[tuple[int, int, int]]) -> None:
        # colour code: 0 grey, 1 black, 2 white (white only when legal).
        graph = WaitForGraph()
        seen: set[tuple[int, int]] = set()
        for a, b, colour in raw:
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            graph.create_edge(v(a), v(b))
            if colour >= 1:
                graph.blacken(v(a), v(b))
            if colour == 2 and not graph.successors(v(b)):
                graph.whiten(v(a), v(b))
        assert graph.vertices_on_dark_cycles() == independent_dark_cycle_vertices(graph)


class TestAgreementOnLiveSystems:
    def test_after_random_workload(self) -> None:
        for seed in range(4):
            system = BasicSystem(n_vertices=8, seed=seed)
            RandomRequestWorkload(system, duration=30.0).start()
            system.run_to_quiescence(max_events=300_000)
            assert system.oracle.vertices_on_dark_cycles() == (
                independent_dark_cycle_vertices(system.oracle)
            )
