"""Exhaustive model-checking tests: QRP1/QRP2 over all interleavings."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.verification.explorer import explore
from repro.verification.model import Initiate, Reply, Request


class TestDeadlockScenarios:
    def test_two_cycle_all_interleavings(self) -> None:
        result = explore(2, [Request(0, (1,)), Request(1, (0,)), Initiate(0)])
        assert result.ok
        assert (0, 1) in result.ever_declared
        assert result.terminal_states >= 1

    def test_three_cycle_all_interleavings(self) -> None:
        result = explore(
            3, [Request(0, (1,)), Request(1, (2,)), Request(2, (0,)), Initiate(2)]
        )
        assert result.ok
        assert (2, 1) in result.ever_declared

    def test_both_endpoints_initiate(self) -> None:
        result = explore(
            2, [Request(0, (1,)), Request(1, (0,)), Initiate(0), Initiate(1)]
        )
        assert result.ok
        assert {(0, 1), (1, 1)} <= result.ever_declared

    def test_and_model_fork(self) -> None:
        result = explore(
            4,
            [
                Request(0, (1, 2)),
                Request(2, (3,)),
                Request(3, (0,)),
                Initiate(0),
            ],
        )
        assert result.ok
        assert (0, 1) in result.ever_declared


class TestNonDeadlockScenarios:
    def test_chain_never_declares(self) -> None:
        result = explore(3, [Request(0, (1,)), Request(1, (2,)), Initiate(0)])
        assert result.ok
        assert result.ever_declared == set()

    def test_resolving_wait_never_declares(self) -> None:
        result = explore(
            2, [Request(0, (1,)), Initiate(0), Reply(1, 0)]
        )
        assert result.ok
        assert result.ever_declared == set()

    def test_tail_vertex_never_declares(self) -> None:
        result = explore(
            3,
            [Request(0, (1,)), Request(1, (0,)), Request(2, (0,)), Initiate(2)],
        )
        assert result.ok
        assert result.ever_declared == set()

    def test_initiation_before_deadlock_may_still_declare_soundly(self) -> None:
        # Vertex 0 initiates before the cycle closes; in interleavings
        # where the probe travels after the cycle forms, declaration
        # happens and is sound in every such state (QRP2 asserted inside
        # the transition function).
        result = explore(
            2, [Request(0, (1,)), Initiate(0), Request(1, (0,))]
        )
        assert result.ok


class TestExplorerMachinery:
    def test_state_budget_enforced(self) -> None:
        script = [Request(i, ((i + 1) % 4,)) for i in range(4)] + [
            Initiate(i) for i in range(4)
        ]
        with pytest.raises(ConfigurationError):
            explore(4, script, max_states=50)

    def test_counts_are_positive(self) -> None:
        result = explore(2, [Request(0, (1,)), Request(1, (0,)), Initiate(0)])
        assert result.states_explored > result.terminal_states >= 1
        assert result.completeness_failures == []
        assert result.soundness_failures == []
