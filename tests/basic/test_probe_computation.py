"""Integration tests for the probe computation: Theorems 1 and 2 end to end.

These tests exercise the full stack -- vertices, FIFO network, probe engine,
initiation policies -- on the canonical scenarios of the paper, and verify
QRP1 (completeness) and QRP2 (soundness) against the global oracle.
"""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.initiation import ManualInitiation
from repro.basic.system import BasicSystem
from repro.sim.network import ExponentialDelay, UniformDelay

from tests.conftest import make_cycle_system


def v(i: int) -> VertexId:
    return VertexId(i)


class TestCycleDetection:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8, 16, 32])
    def test_k_cycle_detected(self, k: int) -> None:
        system = make_cycle_system(k)
        system.run_to_quiescence()
        assert system.declarations, f"no declaration for {k}-cycle"
        system.assert_soundness()
        system.assert_completeness()

    @pytest.mark.parametrize("seed", range(5))
    def test_cycle_detected_under_random_delays(self, seed: int) -> None:
        system = BasicSystem(
            n_vertices=4, seed=seed, delay_model=ExponentialDelay(mean=2.0)
        )
        for i in range(4):
            system.schedule_request(float(i), i, [(i + 1) % 4])
        system.run_to_quiescence()
        system.assert_soundness()
        system.assert_completeness()
        assert system.declarations

    def test_closing_vertex_always_detects(self) -> None:
        # The vertex whose request closes the cycle initiates while on a
        # dark cycle (section 4.2 rule), so it must declare (Theorem 1).
        system = make_cycle_system(5)
        system.run_to_quiescence()
        declared = {d.vertex for d in system.declarations}
        assert v(4) in declared  # vertex 4 issues the closing request

    def test_cycle_with_tail_detected_tail_not_declared(self) -> None:
        # 0 -> 1 -> 2 -> 0 plus 3 -> 0; 3 is blocked forever but not on the
        # cycle, so it must never *declare* (soundness) -- WFGD informs it.
        system = BasicSystem(n_vertices=4)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [2])
        system.schedule_request(1.0, 3, [0])
        system.schedule_request(1.5, 2, [0])
        system.run_to_quiescence()
        system.assert_soundness()
        declared = {d.vertex for d in system.declarations}
        assert v(3) not in declared
        assert declared & {v(0), v(1), v(2)}

    def test_two_disjoint_cycles_both_detected(self) -> None:
        system = BasicSystem(n_vertices=5)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [0])
        system.schedule_request(0.0, 2, [3])
        system.schedule_request(0.5, 3, [4])
        system.schedule_request(1.0, 4, [2])
        system.run_to_quiescence()
        system.assert_completeness()
        declared = {d.vertex for d in system.declarations}
        assert declared & {v(0), v(1)}
        assert declared & {v(2), v(3), v(4)}

    def test_and_model_cycle_through_multi_wait(self) -> None:
        # 0 waits on {1, 2}; only the branch through 2 cycles back.
        system = BasicSystem(n_vertices=4, service_delay=50.0)
        system.schedule_request(0.0, 0, [1, 2])
        system.schedule_request(1.0, 2, [3])
        system.schedule_request(2.0, 3, [0])
        system.run(until=40.0)
        system.assert_soundness()
        declared = {d.vertex for d in system.declarations}
        assert declared >= {v(3)}


class TestNoFalsePositives:
    def test_acyclic_chain_never_declares(self) -> None:
        system = BasicSystem(n_vertices=5)
        for i in range(4):
            system.schedule_request(float(i), i, [i + 1])
        system.run_to_quiescence()
        assert system.declarations == []
        assert system.vertex(0).active

    def test_near_cycle_that_resolves_never_declares(self) -> None:
        # 0 -> 1 -> 2; 2 replies to 1 before 2's own request would close a
        # cycle.  No dark cycle ever exists; nothing may be declared.
        system = BasicSystem(n_vertices=3, service_delay=0.5)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [2])
        system.run_to_quiescence()
        assert system.declarations == []

    @pytest.mark.parametrize("seed", range(10))
    def test_heavy_churn_no_false_positives(self, seed: int) -> None:
        # Vertices repeatedly request and get replies; requests race probes
        # under exponential delays.  QRP2 must hold on every history.
        system = BasicSystem(
            n_vertices=6,
            seed=seed,
            delay_model=UniformDelay(0.1, 3.0),
            service_delay=0.2,
        )
        # A wave of chain requests that all resolve.  A vertex may still be
        # waiting from the previous wave (delays run up to 3.0), so guard
        # against duplicate edges (G1).
        def request_if_free(i: int) -> None:
            vertex = system.vertex(i)
            if v(i + 1) not in vertex.pending_out:
                vertex.request([v(i + 1)])

        for wave in range(5):
            base = wave * 2.0
            for i in range(5):
                system.simulator.schedule_at(
                    base + i * 0.1, lambda i=i: request_if_free(i)
                )
        system.run_to_quiescence(max_events=100_000)
        system.assert_soundness()
        assert system.declarations == []


class TestProbeMechanics:
    def test_probe_raced_with_request_is_meaningful_by_p1(self) -> None:
        # A probe sent on a grey edge arrives after the request (FIFO), so
        # it is meaningful at receipt -- the P1 guarantee.
        system = make_cycle_system(3)
        system.run_to_quiescence()
        meaningful = [
            event
            for event in system.simulator.tracer.events("basic.probe.received")
            if event["meaningful"]
        ]
        assert meaningful

    def test_at_most_one_probe_per_edge_per_computation(self) -> None:
        system = make_cycle_system(6)
        system.run_to_quiescence()
        per_edge: dict[tuple, int] = {}
        for event in system.simulator.tracer.events("basic.probe.sent"):
            key = (event["tag"], event["source"], event["target"])
            per_edge[key] = per_edge.get(key, 0) + 1
        assert per_edge
        assert all(count == 1 for count in per_edge.values())

    def test_probe_count_on_cycle_at_most_n(self) -> None:
        # Section 4.3: at most one probe per edge => on a pure k-cycle each
        # computation sends at most k probes.
        k = 8
        system = make_cycle_system(k)
        system.run_to_quiescence()
        assert system.probes_per_computation
        assert all(count <= k for count in system.probes_per_computation.values())

    def test_manual_initiation_detects_existing_deadlock(self) -> None:
        system = BasicSystem(n_vertices=3, initiation=ManualInitiation())
        for i in range(3):
            system.schedule_request(float(i), i, [(i + 1) % 3])
        system.run_to_quiescence()
        assert system.declarations == []  # nobody initiated
        # Now initiate from vertex 0, which is on a dark (black) cycle.
        system.simulator.schedule(1.0, system.vertex(0).initiate_probe_computation)
        system.run_to_quiescence()
        assert [d.vertex for d in system.declarations] == [v(0)]
        system.assert_soundness()

    def test_manual_initiation_off_cycle_never_declares(self) -> None:
        system = BasicSystem(n_vertices=4, initiation=ManualInitiation())
        for i in range(3):
            system.schedule_request(float(i), i, [(i + 1) % 3])
        system.schedule_request(0.0, 3, [0])  # tail vertex
        system.run_to_quiescence()
        system.simulator.schedule(1.0, system.vertex(3).initiate_probe_computation)
        system.run_to_quiescence()
        assert system.declarations == []

    def test_detection_latency_recorded(self) -> None:
        system = make_cycle_system(3)
        system.run_to_quiescence()
        histogram = system.metrics.histogram("basic.detection.latency")
        assert histogram.count >= 1
        assert histogram.quantile(0.0) >= 0.0


class TestRepeatedComputations:
    def test_vertex_initiating_twice_uses_fresh_tags(self) -> None:
        system = BasicSystem(n_vertices=3, initiation=ManualInitiation())
        for i in range(3):
            system.schedule_request(float(i), i, [(i + 1) % 3])
        system.run_to_quiescence()
        system.simulator.schedule(1.0, system.vertex(0).initiate_probe_computation)
        system.simulator.schedule(50.0, system.vertex(0).initiate_probe_computation)
        system.run_to_quiescence()
        tags = {d.tag for d in system.declarations}
        assert len(tags) == 2  # both computations detect, under fresh tags
        system.assert_soundness()
