"""Unit tests for VertexProcess: request/reply behaviour, axiom adherence."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.graph import EdgeColor
from repro.basic.system import BasicSystem
from repro.errors import ProtocolError


def v(i: int) -> VertexId:
    return VertexId(i)


class TestRequestReply:
    def test_request_blocks_until_reply(self) -> None:
        system = BasicSystem(n_vertices=2)
        system.schedule_request(0.0, 0, [1])
        system.run(until=0.5)
        assert system.vertex(0).blocked
        system.run_to_quiescence()
        assert system.vertex(0).active

    def test_edge_colour_lifecycle(self) -> None:
        # grey at send -> black at receipt -> white at reply -> deleted.
        system = BasicSystem(n_vertices=2, service_delay=2.0)
        system.schedule_request(0.0, 0, [1])
        system.run(until=0.5)
        assert system.oracle.color(v(0), v(1)) is EdgeColor.GREY
        system.run(until=1.5)  # delivery at t=1
        assert system.oracle.color(v(0), v(1)) is EdgeColor.BLACK
        system.run(until=3.5)  # service at t=3, reply in flight
        assert system.oracle.color(v(0), v(1)) is EdgeColor.WHITE
        system.run_to_quiescence()
        assert system.oracle.color(v(0), v(1)) is None

    def test_and_model_blocks_until_all_replies(self) -> None:
        system = BasicSystem(n_vertices=4, service_delay=1.0)
        system.schedule_request(0.0, 0, [1, 2, 3])
        system.run(until=2.5)
        # All three targets received and will reply at their own pace.
        assert system.vertex(0).blocked
        system.run_to_quiescence()
        assert system.vertex(0).active
        assert len(system.oracle.vertices()) == 0 or len(system.oracle) == 0

    def test_duplicate_request_rejected(self) -> None:
        system = BasicSystem(n_vertices=2)
        system.vertex(0).request([v(1)])
        with pytest.raises(ProtocolError):
            system.vertex(0).request([v(1)])

    def test_self_request_rejected(self) -> None:
        system = BasicSystem(n_vertices=2)
        with pytest.raises(ProtocolError):
            system.vertex(0).request([v(0)])

    def test_empty_request_is_noop(self) -> None:
        system = BasicSystem(n_vertices=2)
        system.vertex(0).request([])
        assert system.vertex(0).active

    def test_request_batch_deduplicates(self) -> None:
        system = BasicSystem(n_vertices=3)
        system.vertex(0).request([v(1), v(1), v(2)])
        assert system.vertex(0).pending_out == {v(1), v(2)}


class TestBlockedServiceDeferral:
    def test_blocked_vertex_defers_replies_until_unblocked(self) -> None:
        # 1 waits on 2; 0 requests 1.  1 may not reply (G3) until 2 replies.
        system = BasicSystem(n_vertices=3, service_delay=1.0)
        system.schedule_request(0.0, 1, [2])
        system.schedule_request(0.0, 0, [1])
        system.run(until=1.5)
        assert system.vertex(1).blocked
        assert v(0) in system.vertex(1).pending_in
        system.run_to_quiescence()
        assert system.vertex(0).active
        assert system.vertex(1).active

    def test_manual_reply_requires_active(self) -> None:
        system = BasicSystem(n_vertices=3, auto_reply=False)
        system.schedule_request(0.0, 1, [2])
        system.schedule_request(0.0, 0, [1])
        system.run(until=2.0)
        with pytest.raises(ProtocolError):
            system.vertex(1).reply_to(v(0))  # blocked: G3 forbids

    def test_manual_reply_to_unknown_requester_rejected(self) -> None:
        system = BasicSystem(n_vertices=2, auto_reply=False)
        with pytest.raises(ProtocolError):
            system.vertex(1).reply_to(v(0))

    def test_manual_reply_works_when_active(self) -> None:
        system = BasicSystem(n_vertices=2, auto_reply=False)
        system.schedule_request(0.0, 0, [1])
        system.run(until=1.5)
        system.vertex(1).reply_to(v(0))
        system.run_to_quiescence()
        assert system.vertex(0).active


class TestCallbacks:
    def test_unblocked_callback_fires(self) -> None:
        system = BasicSystem(n_vertices=2)
        unblocked: list[int] = []
        system.vertex(0).unblocked_callback = lambda vertex: unblocked.append(
            int(vertex.vertex_id)
        )
        system.schedule_request(0.0, 0, [1])
        system.run_to_quiescence()
        assert unblocked == [0]

    def test_unknown_message_type_rejected(self) -> None:
        system = BasicSystem(n_vertices=2)
        with pytest.raises(ProtocolError):
            system.vertex(0).on_message(v(1), object())

    def test_unsolicited_reply_rejected(self) -> None:
        from repro.basic.messages import Reply

        system = BasicSystem(n_vertices=2)
        with pytest.raises(ProtocolError):
            system.vertex(0).on_message(v(1), Reply(replier=v(1)))

    def test_repr_shows_state(self) -> None:
        system = BasicSystem(n_vertices=2)
        assert "active" in repr(system.vertex(0))
        system.vertex(0).request([v(1)])
        assert "blocked" in repr(system.vertex(0))
