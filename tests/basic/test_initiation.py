"""Unit tests for initiation policies (section 4)."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.initiation import DelayedInitiation, ImmediateInitiation
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError

from tests.conftest import make_cycle_system


def v(i: int) -> VertexId:
    return VertexId(i)


class TestImmediateInitiation:
    def test_one_computation_per_request_batch(self) -> None:
        system = BasicSystem(n_vertices=4, initiation=ImmediateInitiation())
        system.schedule_request(0.0, 0, [1, 2, 3])
        system.run_to_quiescence()
        assert system.metrics.counter_value("basic.computations.initiated") == 1

    def test_each_separate_request_initiates(self) -> None:
        system = BasicSystem(n_vertices=4, service_delay=100.0)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(1.0, 0, [2])
        system.run(until=50.0)
        assert system.metrics.counter_value("basic.computations.initiated") == 2


class TestDelayedInitiation:
    def test_negative_t_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DelayedInitiation(timeout=-1.0)

    def test_short_wait_avoids_computation(self) -> None:
        # The edge resolves before T elapses: no computation is initiated.
        system = BasicSystem(
            n_vertices=2, initiation=DelayedInitiation(timeout=10.0), service_delay=0.5
        )
        system.schedule_request(0.0, 0, [1])
        system.run_to_quiescence()
        assert system.metrics.counter_value("basic.computations.initiated") == 0
        assert system.metrics.counter_value("basic.computations.avoided") == 1
        assert system.metrics.counter_value("basic.probes.sent") == 0

    def test_persistent_edge_triggers_computation_after_t(self) -> None:
        timeout = 5.0
        system = make_cycle_system(3, initiation=DelayedInitiation(timeout=timeout))
        system.run_to_quiescence()
        assert system.metrics.counter_value("basic.computations.initiated") >= 1
        assert system.declarations
        system.assert_soundness()

    def test_detection_latency_at_least_t(self) -> None:
        # The paper: detection time is at least T.
        timeout = 7.0
        system = make_cycle_system(4, initiation=DelayedInitiation(timeout=timeout))
        system.run_to_quiescence()
        histogram = system.metrics.histogram("basic.detection.latency")
        assert histogram.count >= 1
        assert histogram.quantile(0.0) >= timeout

    def test_t_zero_behaves_like_immediate(self) -> None:
        immediate = make_cycle_system(3, initiation=ImmediateInitiation())
        immediate.run_to_quiescence()
        delayed = make_cycle_system(3, initiation=DelayedInitiation(timeout=0.0))
        delayed.run_to_quiescence()
        assert delayed.declarations
        assert immediate.metrics.counter_value(
            "basic.computations.initiated"
        ) <= delayed.metrics.counter_value("basic.computations.initiated")

    def test_larger_t_initiates_fewer_computations(self) -> None:
        # Churn workload: each chain wave fully resolves within ~7 time
        # units (well before the next wave 20 units later).  T below the
        # edge lifetimes fires often; T above them never fires.
        def run(timeout: float) -> int:
            system = BasicSystem(
                n_vertices=6,
                initiation=DelayedInitiation(timeout=timeout),
                service_delay=0.5,
            )
            for wave in range(10):
                for i in range(5):
                    system.schedule_request(wave * 20.0 + i * 0.1, i, [i + 1])
            system.run_to_quiescence()
            return system.metrics.counter_value("basic.computations.initiated")

        assert run(0.1) > run(10.0)
        assert run(10.0) == 0
