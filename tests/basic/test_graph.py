"""Unit tests for the coloured wait-for graph and axioms G1-G4."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.graph import EdgeColor, WaitForGraph
from repro.errors import AxiomViolation


def v(i: int) -> VertexId:
    return VertexId(i)


class TestAxiomG1Creation:
    def test_creates_grey_edge(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        assert graph.color(v(0), v(1)) is EdgeColor.GREY

    def test_duplicate_edge_rejected(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        with pytest.raises(AxiomViolation) as excinfo:
            graph.create_edge(v(0), v(1))
        assert excinfo.value.axiom == "G1"

    def test_self_edge_rejected(self) -> None:
        with pytest.raises(AxiomViolation):
            WaitForGraph().create_edge(v(0), v(0))

    def test_reverse_edge_is_distinct(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.create_edge(v(1), v(0))
        assert len(graph) == 2


class TestAxiomG2Blackening:
    def test_grey_turns_black(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        assert graph.color(v(0), v(1)) is EdgeColor.BLACK

    def test_blacken_missing_edge_rejected(self) -> None:
        with pytest.raises(AxiomViolation):
            WaitForGraph().blacken(v(0), v(1))

    def test_blacken_black_edge_rejected(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        with pytest.raises(AxiomViolation):
            graph.blacken(v(0), v(1))


class TestAxiomG3Whitening:
    def test_black_turns_white_when_target_active(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        graph.whiten(v(0), v(1))
        assert graph.color(v(0), v(1)) is EdgeColor.WHITE

    def test_whiten_rejected_when_target_blocked(self) -> None:
        # Only active processes (no outgoing edges) may reply.
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        graph.create_edge(v(1), v(2))
        with pytest.raises(AxiomViolation) as excinfo:
            graph.whiten(v(0), v(1))
        assert excinfo.value.axiom == "G3"

    def test_whiten_grey_edge_rejected(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        with pytest.raises(AxiomViolation):
            graph.whiten(v(0), v(1))


class TestAxiomG4Deletion:
    def test_white_edge_deleted(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        graph.whiten(v(0), v(1))
        graph.delete_edge(v(0), v(1))
        assert graph.color(v(0), v(1)) is None
        assert len(graph) == 0

    def test_delete_dark_edge_rejected(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        with pytest.raises(AxiomViolation):
            graph.delete_edge(v(0), v(1))

    def test_edge_can_be_recreated_after_deletion(self) -> None:
        graph = WaitForGraph()
        for _ in range(2):
            graph.create_edge(v(0), v(1))
            graph.blacken(v(0), v(1))
            graph.whiten(v(0), v(1))
            graph.delete_edge(v(0), v(1))
        assert len(graph) == 0


def build_cycle(graph: WaitForGraph, ids: list[int], black: bool = True) -> None:
    for a, b in zip(ids, ids[1:] + ids[:1]):
        graph.create_edge(v(a), v(b))
        if black:
            graph.blacken(v(a), v(b))


class TestDarkCycleDetection:
    def test_black_cycle_is_dark_cycle(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        for i in range(3):
            assert graph.is_on_dark_cycle(v(i))
            assert graph.is_on_black_cycle(v(i))

    def test_mixed_grey_black_cycle_is_dark_but_not_black(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        graph.create_edge(v(1), v(0))  # stays grey
        assert graph.is_on_dark_cycle(v(0))
        assert not graph.is_on_black_cycle(v(0))

    def test_cycle_with_white_edge_is_not_dark(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        graph.create_edge(v(1), v(2))
        graph.blacken(v(1), v(2))
        graph.create_edge(v(2), v(0))
        graph.blacken(v(2), v(0))
        # Whitening (2, 0) is illegal while 0 waits; break 0's wait first.
        # Instead colour a fresh scenario: cycle 0->1->2->0 where the edge
        # 0->1 is white requires vertex 1 active; build a path only.
        assert graph.is_on_dark_cycle(v(0))

    def test_chain_has_no_cycle(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.create_edge(v(1), v(2))
        for i in range(3):
            assert not graph.is_on_dark_cycle(v(i))

    def test_vertex_off_cycle_waiting_into_cycle_is_not_on_cycle(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        graph.create_edge(v(3), v(0))
        assert not graph.is_on_dark_cycle(v(3))
        assert graph.vertices_on_dark_cycles() == {v(0), v(1), v(2)}

    def test_two_disjoint_cycles(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1])
        build_cycle(graph, [2, 3, 4])
        assert graph.vertices_on_dark_cycles() == {v(0), v(1), v(2), v(3), v(4)}

    def test_find_dark_cycle_returns_actual_cycle(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2, 3])
        cycle = graph.find_dark_cycle(v(0))
        assert cycle is not None
        assert cycle[0] == v(0)
        assert set(cycle) == {v(0), v(1), v(2), v(3)}
        # Consecutive cycle members are joined by edges, and it closes.
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert graph.has_edge(a, b)

    def test_find_dark_cycle_none_when_acyclic(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        assert graph.find_dark_cycle(v(0)) is None

    def test_figure_eight_both_cycles_found(self) -> None:
        # Vertex 0 on two cycles sharing it: 0->1->0 and 0->2->0.
        graph = WaitForGraph()
        build_cycle(graph, [0, 1])
        graph.create_edge(v(0), v(2))
        graph.blacken(v(0), v(2))
        graph.create_edge(v(2), v(0))
        graph.blacken(v(2), v(0))
        assert graph.vertices_on_dark_cycles() == {v(0), v(1), v(2)}


class TestPermanentBlackEdges:
    def test_cycle_edges_are_permanent(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        edges = graph.permanent_black_edges_from(v(0))
        assert edges == {(v(0), v(1)), (v(1), v(2)), (v(2), v(0))}

    def test_tail_into_cycle_included_from_tail_vertex(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        graph.create_edge(v(3), v(0))
        graph.blacken(v(3), v(0))
        edges = graph.permanent_black_edges_from(v(3))
        assert (v(3), v(0)) in edges
        assert (v(0), v(1)) in edges

    def test_no_deadlock_no_permanent_edges(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.blacken(v(0), v(1))
        assert graph.permanent_black_edges_from(v(0)) == set()

    def test_edge_to_non_deadlocked_vertex_excluded(self) -> None:
        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        # Vertex 0 also waits on 5, which waits on nothing dark.
        graph.create_edge(v(0), v(5))
        graph.blacken(v(0), v(5))
        edges = graph.permanent_black_edges_from(v(0))
        assert (v(0), v(5)) not in edges
        assert (v(0), v(1)) in edges


class TestQueries:
    def test_successors_and_predecessors(self) -> None:
        graph = WaitForGraph()
        graph.create_edge(v(0), v(1))
        graph.create_edge(v(0), v(2))
        graph.create_edge(v(3), v(0))
        assert graph.successors(v(0)) == {v(1), v(2)}
        assert graph.predecessors(v(0)) == {v(3)}
        assert graph.vertices() == {v(0), v(1), v(2), v(3)}

    def test_networkx_cross_validation(self) -> None:
        # Independent check of our DFS cycle detection against networkx.
        import networkx as nx

        graph = WaitForGraph()
        build_cycle(graph, [0, 1, 2])
        graph.create_edge(v(3), v(0))
        graph.create_edge(v(4), v(5))

        nx_graph = nx.DiGraph()
        for (a, b), color in graph.edges():
            if color.is_dark:
                nx_graph.add_edge(a, b)
        deadlocked_nx = set()
        for component in nx.strongly_connected_components(nx_graph):
            if len(component) > 1:
                deadlocked_nx |= component
        assert deadlocked_nx == graph.vertices_on_dark_cycles()
