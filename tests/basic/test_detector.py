"""Unit tests for the ProbeEngine (algorithm A0/A1/A2, section 3.4)."""

from __future__ import annotations

from repro._ids import ProbeTag, VertexId
from repro.basic.detector import ProbeEngine
from repro.basic.messages import Probe


def v(i: int) -> VertexId:
    return VertexId(i)


class Harness:
    """Collects the engine's outputs for assertion."""

    def __init__(self, vertex: int) -> None:
        self.sent: list[tuple[VertexId, Probe]] = []
        self.declared: list[ProbeTag] = []
        self.engine = ProbeEngine(
            vertex=v(vertex),
            send_probe=lambda target, probe: self.sent.append((target, probe)),
            declare_deadlock=self.declared.append,
        )


class TestInitiation:
    def test_a0_sends_probe_on_every_outgoing_edge(self) -> None:
        harness = Harness(0)
        tag = harness.engine.initiate(outgoing=[v(1), v(2), v(3)])
        assert [target for target, _ in harness.sent] == [v(1), v(2), v(3)]
        assert all(probe.tag == tag for _, probe in harness.sent)

    def test_initiation_with_no_outgoing_edges(self) -> None:
        harness = Harness(0)
        harness.engine.initiate(outgoing=[])
        assert harness.sent == []

    def test_sequences_increase(self) -> None:
        harness = Harness(0)
        first = harness.engine.initiate(outgoing=[])
        second = harness.engine.initiate(outgoing=[])
        assert second.supersedes(first)

    def test_tag_carries_initiator_identity(self) -> None:
        harness = Harness(7)
        tag = harness.engine.initiate(outgoing=[])
        assert tag.initiator == 7


class TestMeaningfulness:
    def test_non_meaningful_probe_ignored(self) -> None:
        harness = Harness(1)
        probe = Probe(tag=ProbeTag(initiator=0, sequence=1))
        harness.engine.on_probe(
            sender=v(0), probe=probe, incoming_edge_black=False, outgoing=[v(2)]
        )
        assert harness.sent == []
        assert harness.declared == []

    def test_meaningful_probe_propagated_on_all_outgoing(self) -> None:
        harness = Harness(1)
        probe = Probe(tag=ProbeTag(initiator=0, sequence=1))
        harness.engine.on_probe(
            sender=v(0), probe=probe, incoming_edge_black=True, outgoing=[v(2), v(3)]
        )
        assert [target for target, _ in harness.sent] == [v(2), v(3)]


class TestA2OncePerComputation:
    def test_second_meaningful_probe_same_computation_not_propagated(self) -> None:
        harness = Harness(1)
        probe = Probe(tag=ProbeTag(initiator=0, sequence=1))
        harness.engine.on_probe(v(0), probe, True, [v(2)])
        harness.engine.on_probe(v(5), probe, True, [v(2)])
        assert len(harness.sent) == 1

    def test_distinct_computations_each_propagate(self) -> None:
        harness = Harness(1)
        harness.engine.on_probe(v(0), Probe(ProbeTag(0, 1)), True, [v(2)])
        harness.engine.on_probe(v(0), Probe(ProbeTag(5, 1)), True, [v(2)])
        assert len(harness.sent) == 2

    def test_stale_computation_ignored(self) -> None:
        # Section 4.3: (i, k) with k < n is superseded by (i, n).
        harness = Harness(1)
        harness.engine.on_probe(v(0), Probe(ProbeTag(0, 5)), True, [v(2)])
        harness.engine.on_probe(v(0), Probe(ProbeTag(0, 3)), True, [v(2)])
        assert len(harness.sent) == 1

    def test_newer_computation_replaces_older(self) -> None:
        harness = Harness(1)
        harness.engine.on_probe(v(0), Probe(ProbeTag(0, 1)), True, [v(2)])
        harness.engine.on_probe(v(0), Probe(ProbeTag(0, 2)), True, [v(2)])
        assert len(harness.sent) == 2
        assert harness.engine.latest_sequence(0) == 2


class TestA1Declaration:
    def test_initiator_declares_on_meaningful_probe_of_own_computation(self) -> None:
        harness = Harness(0)
        tag = harness.engine.initiate(outgoing=[v(1)])
        harness.engine.on_probe(v(2), Probe(tag), True, [v(1)])
        assert harness.declared == [tag]
        assert harness.engine.deadlocked

    def test_initiator_declares_only_once_per_computation(self) -> None:
        harness = Harness(0)
        tag = harness.engine.initiate(outgoing=[v(1), v(2)])
        harness.engine.on_probe(v(3), Probe(tag), True, [v(1), v(2)])
        harness.engine.on_probe(v(4), Probe(tag), True, [v(1), v(2)])
        assert harness.declared == [tag]

    def test_initiator_ignores_probe_of_stale_own_computation(self) -> None:
        harness = Harness(0)
        old_tag = harness.engine.initiate(outgoing=[v(1)])
        harness.engine.initiate(outgoing=[v(1)])
        harness.engine.on_probe(v(2), Probe(old_tag), True, [v(1)])
        assert harness.declared == []

    def test_initiator_ignores_non_meaningful_probe_of_own_computation(self) -> None:
        harness = Harness(0)
        tag = harness.engine.initiate(outgoing=[v(1)])
        harness.engine.on_probe(v(2), Probe(tag), False, [v(1)])
        assert harness.declared == []

    def test_initiator_does_not_forward_own_probe(self) -> None:
        # A1: the initiator declares; it does not run A2 for its own tag.
        harness = Harness(0)
        tag = harness.engine.initiate(outgoing=[v(1)])
        sent_before = len(harness.sent)
        harness.engine.on_probe(v(2), Probe(tag), True, [v(1)])
        assert len(harness.sent) == sent_before


class TestStateBound:
    def test_tracks_one_record_per_initiator(self) -> None:
        # Section 4.3: per-vertex state is O(N) -- one record per initiator,
        # regardless of how many computations each initiator starts.
        harness = Harness(99)
        for initiator in range(10):
            for sequence in range(1, 6):
                harness.engine.on_probe(
                    v(0), Probe(ProbeTag(initiator, sequence)), True, []
                )
        assert harness.engine.tracked_computations == 10
