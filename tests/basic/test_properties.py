"""System-level property tests: the theorems over random histories.

These complement the exhaustive model checker (which covers all
interleavings of tiny scenarios) with *sampled* schedules over larger
systems: random workload shapes, delay distributions, fan-outs, and seeds.
Soundness must hold on every sampled history; completeness at quiescence.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basic.initiation import DelayedInitiation, ImmediateInitiation
from repro.basic.system import BasicSystem
from repro.sim.network import ExponentialDelay, FixedDelay, UniformDelay
from repro.workloads.basic_random import RandomRequestWorkload

DELAY_MODELS = st.sampled_from(
    [
        FixedDelay(1.0),
        UniformDelay(0.1, 2.5),
        ExponentialDelay(mean=1.0),
        ExponentialDelay(mean=0.3),
    ]
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    delay_model=DELAY_MODELS,
    n_vertices=st.integers(min_value=3, max_value=10),
    fan_out=st.integers(min_value=1, max_value=2),
    service_delay=st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=40, deadline=None)
def test_soundness_and_completeness_on_random_histories(
    seed: int,
    delay_model,
    n_vertices: int,
    fan_out: int,
    service_delay: float,
) -> None:
    system = BasicSystem(
        n_vertices=n_vertices,
        seed=seed,
        delay_model=delay_model,
        service_delay=service_delay,
        strict=False,
    )
    workload = RandomRequestWorkload(
        system,
        mean_think=1.5,
        max_targets=min(fan_out, n_vertices - 1),
        duration=30.0,
    )
    workload.start()
    system.run_to_quiescence(max_events=400_000)
    # Theorem 2 on every history:
    assert system.soundness_violations == []
    # Theorem 1 + initiation rule at quiescence:
    report = system.completeness_report()
    assert report.complete, report.undetected_components


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    timeout=st.floats(min_value=0.0, max_value=12.0),
)
@settings(max_examples=25, deadline=None)
def test_delayed_initiation_preserves_both_theorems(seed: int, timeout: float) -> None:
    system = BasicSystem(
        n_vertices=8,
        seed=seed,
        delay_model=ExponentialDelay(mean=1.0),
        service_delay=0.5,
        initiation=DelayedInitiation(timeout=timeout),
        strict=False,
    )
    RandomRequestWorkload(system, mean_think=1.5, max_targets=2, duration=25.0).start()
    system.run_to_quiescence(max_events=400_000)
    assert system.soundness_violations == []
    assert system.completeness_report().complete


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_wfgd_exactness_on_random_deadlocks(seed: int) -> None:
    # Whatever deadlocks a random run produces, WFGD must deliver the
    # exact oracle path set to every permanently blocked vertex.
    system = BasicSystem(
        n_vertices=8,
        seed=seed,
        service_delay=0.5,
        wfgd_on_declare=True,
        strict=False,
    )
    RandomRequestWorkload(system, mean_think=1.5, max_targets=2, duration=25.0).start()
    system.run_to_quiescence(max_events=400_000)
    assert system.soundness_violations == []
    for vertex_id, vertex in system.vertices.items():
        expected = system.oracle.permanent_black_edges_from(vertex_id)
        if expected:
            assert vertex.wfgd.paths == expected
