"""Tests for the WFGD computation (section 5)."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.system import BasicSystem

from tests.conftest import make_cycle_system


def v(i: int) -> VertexId:
    return VertexId(i)


def quiesce(system: BasicSystem) -> None:
    system.run_to_quiescence()
    system.assert_soundness()


class TestWfgdOnCycle:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_every_cycle_member_learns_all_cycle_edges(self, k: int) -> None:
        system = make_cycle_system(k, wfgd_on_declare=True)
        quiesce(system)
        cycle_edges = {(v(i), v((i + 1) % k)) for i in range(k)}
        for i in range(k):
            vertex = system.vertex(i)
            assert vertex.wfgd.knows_deadlocked
            assert vertex.wfgd.paths == cycle_edges

    def test_wfgd_matches_oracle_ground_truth(self, k: int = 4) -> None:
        system = make_cycle_system(k, wfgd_on_declare=True)
        quiesce(system)
        for i in range(k):
            expected = system.oracle.permanent_black_edges_from(v(i))
            assert system.vertex(i).wfgd.paths == expected

    def test_wfgd_terminates(self) -> None:
        # Termination is implied by quiescence; also check a bounded number
        # of WFGD messages (never the same set twice per channel).
        system = make_cycle_system(5, wfgd_on_declare=True)
        quiesce(system)
        assert system.metrics.counter_value("basic.wfgd.sent") > 0


class TestWfgdTailVertices:
    def test_tail_vertex_learns_it_is_deadlocked(self) -> None:
        # 3 -> 0 -> 1 -> 2 -> 0: vertex 3 is not on the cycle, never
        # declares (QRP2), but WFGD must inform it (section 4.2).
        system = BasicSystem(n_vertices=4, wfgd_on_declare=True)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [2])
        system.schedule_request(1.0, 3, [0])
        system.schedule_request(1.5, 2, [0])
        quiesce(system)
        tail = system.vertex(3)
        assert not tail.engine.deadlocked  # never declared via A1
        assert tail.wfgd.knows_deadlocked  # but informed via WFGD
        assert (v(3), v(0)) in tail.wfgd.paths
        assert tail.wfgd.paths == system.oracle.permanent_black_edges_from(v(3))

    def test_chain_of_tails_all_informed(self) -> None:
        # 5 -> 4 -> 3 -> cycle(0,1,2).
        system = BasicSystem(n_vertices=6, wfgd_on_declare=True)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.2, 1, [2])
        system.schedule_request(0.4, 3, [0])
        system.schedule_request(0.6, 4, [3])
        system.schedule_request(0.8, 5, [4])
        system.schedule_request(1.0, 2, [0])
        quiesce(system)
        for i in range(6):
            assert system.vertex(i).wfgd.knows_deadlocked or system.vertex(
                i
            ).engine.deadlocked, f"vertex {i} was not informed"
        assert (v(5), v(4)) in system.vertex(5).wfgd.paths
        assert (v(4), v(3)) in system.vertex(5).wfgd.paths

    def test_late_attaching_tail_is_still_informed(self) -> None:
        # The deadlock forms and WFGD completes; only THEN does vertex 3
        # start waiting into the cycle.  The persistent-send rule ("and
        # thereafter sends") must inform it -- a one-shot sweep would not.
        # (Found originally by the hypothesis property test.)
        system = BasicSystem(n_vertices=4, wfgd_on_declare=True)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [0])
        system.run_to_quiescence()
        assert system.vertex(0).deadlocked  # WFGD finished long ago
        system.schedule_request(100.0, 3, [0])
        system.run_to_quiescence()
        tail = system.vertex(3)
        assert tail.wfgd.knows_deadlocked
        assert tail.wfgd.paths == system.oracle.permanent_black_edges_from(v(3))

    def test_unrelated_vertex_learns_nothing(self) -> None:
        system = BasicSystem(n_vertices=4, wfgd_on_declare=True)
        system.schedule_request(0.0, 0, [1])
        system.schedule_request(0.5, 1, [0])
        quiesce(system)
        assert system.vertex(3).wfgd.paths == set()
        assert not system.vertex(3).wfgd.knows_deadlocked


class TestWfgdUnitBehaviour:
    def test_initiator_seeding_is_idempotent(self) -> None:
        from repro.basic.messages import WfgdMessage
        from repro.basic.wfgd import WfgdParticipant

        sent: list[tuple[VertexId, WfgdMessage]] = []
        participant = WfgdParticipant(
            vertex=v(1),
            send=lambda target, message: sent.append((target, message)),
            incoming_black=lambda: {v(0)},
        )
        participant.start_as_initiator()
        participant.start_as_initiator()
        assert len(sent) == 1

    def test_same_message_not_sent_twice(self) -> None:
        from repro.basic.messages import WfgdMessage
        from repro.basic.wfgd import WfgdParticipant

        sent: list[tuple[VertexId, WfgdMessage]] = []
        participant = WfgdParticipant(
            vertex=v(1),
            send=lambda target, message: sent.append((target, message)),
            incoming_black=lambda: {v(0)},
        )
        message = WfgdMessage(edges=frozenset({(v(1), v(2))}))
        participant.on_message(message)
        participant.on_message(message)
        assert len(sent) == 1

    def test_paths_accumulate(self) -> None:
        from repro.basic.messages import WfgdMessage
        from repro.basic.wfgd import WfgdParticipant

        participant = WfgdParticipant(
            vertex=v(1), send=lambda *_: None, incoming_black=lambda: set()
        )
        participant.on_message(WfgdMessage(edges=frozenset({(v(1), v(2))})))
        participant.on_message(WfgdMessage(edges=frozenset({(v(2), v(3))})))
        assert participant.paths == {(v(1), v(2)), (v(2), v(3))}

    def test_reachable_edge_closure(self) -> None:
        from repro.basic.wfgd import reachable_edge_closure

        edges = [(v(0), v(1)), (v(1), v(2)), (v(3), v(4))]
        assert reachable_edge_closure(edges, v(0)) == {(v(0), v(1)), (v(1), v(2))}
        assert reachable_edge_closure(edges, v(3)) == {(v(3), v(4))}
        assert reachable_edge_closure(edges, v(9)) == set()
