"""The cluster runner and its report: gates, JSON artifact, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.cluster import run_cluster
from repro.cluster.runner import ClusterReport
from repro.core.conformance import ConformanceOutcome
from repro.errors import ConfigurationError

TIME_SCALE = 0.002


def _report(**overrides) -> ClusterReport:
    outcome_fields = {
        "variant": "basic",
        "scenario": "deadlock",
        "declarations": 2,
        "soundness_violations": 0,
        "complete": True,
        "undetected_components": 0,
        "first_declaration_at": 10.0,
    }
    outcome_fields.update(overrides.pop("outcome", {}))
    outcome = ConformanceOutcome(**outcome_fields)
    fields = {
        "variant": "basic",
        "scenario": "deadlock",
        "outcome": outcome,
        "wall_seconds": 0.5,
        "detection_latency_seconds": 0.02,
        "detection_latencies_seconds": (0.02, 0.03),
        "time_scale": TIME_SCALE,
        "channel": "unix",
        "workers": 4,
        "messages_delivered": 20,
        "seed": 0,
    }
    fields.update(overrides)
    return ClusterReport(**fields)


class TestReportGates:
    def test_sound_detected_deadlock_is_ok(self) -> None:
        assert _report().ok

    def test_soundness_violation_fails(self) -> None:
        report = _report(outcome={"soundness_violations": 1})
        assert not report.ok

    def test_missed_deadlock_fails(self) -> None:
        report = _report(
            outcome={"declarations": 0, "first_declaration_at": None}
        )
        assert not report.detected
        assert not report.ok

    def test_silent_clean_run_is_ok(self) -> None:
        report = _report(
            scenario="clean",
            outcome={"scenario": "clean", "declarations": 0, "first_declaration_at": None},
        )
        assert report.ok

    def test_incomplete_random_run_fails(self) -> None:
        report = _report(
            scenario="random",
            outcome={"scenario": "random", "complete": False, "undetected_components": 1},
        )
        assert not report.ok

    def test_incomplete_family_run_fails(self) -> None:
        report = _report(
            scenario="ddb-mix",
            outcome={"scenario": "ddb-mix", "complete": False, "undetected_components": 1},
        )
        assert not report.ok

    def test_json_artifact_is_schemad_and_self_contained(self) -> None:
        payload = _report().to_json()
        assert payload["schema"] == "repro.cluster-report/1"
        assert payload["ok"] is True
        assert payload["workers"] == 4
        assert payload["detection_latencies_seconds"] == [0.02, 0.03]
        json.dumps(payload)  # JSON-serializable as-is


class TestRunnerValidation:
    def test_random_resolves_for_every_registered_model(self) -> None:
        # Since the er/ba ensembles learned the OR model, every protocol
        # model has a randomized default; the spec resolver is the
        # gate run_cluster delegates to.
        from repro.core.registry import get_variant
        from repro.workloads.provision import resolve_scenario_spec

        spec = resolve_scenario_spec(get_variant("ormodel"), "random", seed=0)
        assert spec.family == "er"

    def test_family_must_drive_the_variants_model(self) -> None:
        with pytest.raises(ConfigurationError, match="'ddb-mix' cannot drive"):
            run_cluster("basic", scenario="ddb-mix")

    def test_unknown_family_is_a_configuration_error(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown workload family"):
            run_cluster("basic", scenario="no-such-family")

    def test_unknown_variant_is_a_configuration_error(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown detector variant"):
            run_cluster("nope")


class TestRegistryWorkloadsOnCluster:
    def test_random_on_ddb_runs_the_transaction_mix(self) -> None:
        # The old runner hard-coded the basic model here; the registry
        # resolves ddb's default randomized family (ddb-mix) instead.
        report = run_cluster(
            "ddb",
            scenario="random",
            seed=1,
            n_vertices=2,
            duration=40.0,
            time_scale=TIME_SCALE,
            timeout=30.0,
        )
        assert report.sound
        assert report.outcome.complete
        assert report.ok
        assert report.outcome.scenario == "ddb-mix"

    def test_ensemble_family_by_name_on_the_cluster(self) -> None:
        report = run_cluster(
            "basic",
            scenario="er",
            seed=2,
            n_vertices=6,
            duration=0.0,
            time_scale=TIME_SCALE,
            timeout=30.0,
        )
        assert report.sound
        assert report.outcome.complete
        assert report.ok


class TestCli:
    def test_cluster_subcommand_is_registered(self) -> None:
        parser = build_parser()
        args = parser.parse_args(
            ["cluster", "basic", "--scenario", "clean", "--time-scale", "0.002"]
        )
        assert args.variant == "basic"
        assert args.scenario == "clean"

    def test_cli_run_writes_json_artifact(self, tmp_path, capsys) -> None:
        out = tmp_path / "report.json"
        code = main(
            [
                "cluster",
                "basic",
                "--scenario",
                "deadlock",
                "--time-scale",
                str(TIME_SCALE),
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "declarations: " in printed
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.cluster-report/1"
        assert payload["ok"] is True
        assert payload["soundness_violations"] == 0

    def test_cli_unknown_variant_exits_2(self, capsys) -> None:
        assert main(["cluster", "nope"]) == 2
        assert "unknown detector variant" in capsys.readouterr().out
