"""The wire codec: every protocol message survives the socket round trip.

The cluster backend rebuilds each delivered message from wire bytes
(:mod:`repro.cluster.frames`), so the codec must round-trip every message
type a registered variant sends -- frozen dataclasses, enums, tuples,
frozensets -- and must refuse to import code named by the wire (a frame
is data, never an instruction to load a module).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster.frames import (
    HEADER,
    MAX_FRAME_BYTES,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    read_frame,
)
from repro.errors import ClusterError


def roundtrip(value: object) -> object:
    # through real JSON text, exactly as the socket path does
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueRoundTrip:
    def test_scalars_pass_through(self) -> None:
        for value in (None, True, 0, -3, 2.5, "text", "dotted.name"):
            assert roundtrip(value) == value

    def test_containers_keep_their_types(self) -> None:
        assert roundtrip((1, "a")) == (1, "a")
        assert isinstance(roundtrip((1, "a")), tuple)
        assert roundtrip([1, [2, 3]]) == [1, [2, 3]]
        assert roundtrip({"k": (1, 2)}) == {"k": (1, 2)}
        assert roundtrip(frozenset({1, 2})) == frozenset({1, 2})
        assert isinstance(roundtrip(frozenset({1, 2})), frozenset)
        assert isinstance(roundtrip({1, 2}), set)

    def test_basic_model_probe(self) -> None:
        from repro._ids import ProbeTag
        from repro.basic.messages import Probe

        probe = Probe(tag=ProbeTag(initiator=3, sequence=2))
        again = roundtrip(probe)
        assert again == probe
        assert type(again) is Probe
        assert type(again.tag) is ProbeTag

    def test_ddb_model_probe_with_nested_ids(self) -> None:
        from repro._ids import ProbeTag, ProcessId, TransactionId
        from repro.ddb.messages import DdbProbe, EdgeRef

        probe = DdbProbe(
            tag=ProbeTag(initiator=1, sequence=4),
            edge=EdgeRef(
                origin=ProcessId(transaction=TransactionId(7), site=0),
                target=ProcessId(transaction=TransactionId(7), site=1),
                serial=2,
            ),
        )
        again = roundtrip(probe)
        assert again == probe
        assert type(again) is DdbProbe

    def test_every_registered_variant_model_has_codec_coverage(self) -> None:
        """One representative message per protocol package round-trips."""
        from repro._ids import ProbeTag
        from repro.basic.messages import Probe, Reply, Request, WfgdMessage
        from repro.ormodel.messages import Grant, OrQuery, RequestAny

        tag = ProbeTag(initiator=0, sequence=1)
        for message in (
            Request(requester=1),
            Reply(replier=2),
            Probe(tag=tag),
            WfgdMessage(edges=frozenset({(1, 2), (2, 3)})),
            RequestAny(requester=1),
            Grant(granter=3),
            OrQuery(tag=tag, sender=1),
        ):
            again = roundtrip(message)
            assert again == message, type(message).__name__
            assert type(again) is type(message)

    def test_enum_members_round_trip(self) -> None:
        from repro.ddb.locks import LockMode

        for member in LockMode:
            again = roundtrip(member)
            assert again is member

    def test_nested_dataclass_fields_round_trip(self) -> None:
        from repro._ids import ProbeTag
        from repro.basic.messages import Probe

        value = {"probes": (Probe(tag=ProbeTag(initiator=0, sequence=1)),)}
        again = roundtrip(value)
        assert again == value
        assert type(again["probes"][0]) is Probe


class TestRefusals:
    def test_unknown_module_is_refused(self) -> None:
        payload = {
            "__repro__": "dataclass",
            "type": "evil_module:Payload",
            "fields": {},
        }
        with pytest.raises(ClusterError, match="refusing to import"):
            decode_value(payload)

    def test_unknown_attribute_is_refused(self) -> None:
        payload = {
            "__repro__": "dataclass",
            "type": "repro.basic.messages:NoSuchThing",
            "fields": {},
        }
        with pytest.raises(ClusterError):
            decode_value(payload)

    def test_non_object_frame_is_refused(self) -> None:
        with pytest.raises(ClusterError, match="JSON object"):
            decode_frame(json.dumps([1, 2, 3]).encode())

    def test_frame_without_kind_is_refused(self) -> None:
        with pytest.raises(ClusterError, match="kind"):
            decode_frame(json.dumps({"payload": 1}).encode())


class TestStreamFraming:
    @staticmethod
    def _read_all(data: bytes, count: int = 1) -> list:
        """Feed ``data`` to a fresh reader inside a loop, read N frames."""

        async def go() -> list:
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return [await read_frame(reader) for _ in range(count)]

        return asyncio.run(go())

    def test_clean_eof_returns_none(self) -> None:
        assert self._read_all(b"") == [None]

    def test_torn_header_raises(self) -> None:
        with pytest.raises(ClusterError, match="inside a frame"):
            self._read_all(b"\x00\x00")

    def test_torn_body_raises(self) -> None:
        frame = encode_frame({"kind": "msg"})
        with pytest.raises(ClusterError, match="inside a frame"):
            self._read_all(frame[:-1])

    def test_oversize_frame_raises(self) -> None:
        header = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(ClusterError, match="bytes"):
            self._read_all(header)

    def test_two_frames_read_back_to_back(self) -> None:
        data = encode_frame({"kind": "a"}) + encode_frame({"kind": "b"})
        assert self._read_all(data, count=2) == [{"kind": "a"}, {"kind": "b"}]
