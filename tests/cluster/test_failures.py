"""Failure injection: worker death is a typed report, never a hang.

The robustness half of the cluster contract: a worker process killed
mid-computation must surface as a :class:`~repro.errors.ClusterError`
carrying per-worker :class:`~repro.errors.WorkerFailure` records within
the run (not after a timeout, and never as a hang); a slow-starting or
connection-flaky worker must be absorbed by the deterministic connect
retry/backoff schedule.  All hooks ride worker environment variables
documented in :mod:`repro.cluster.worker`.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import run_cluster
from repro.cluster.transport import ClusterTransport
from repro.cluster.worker import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    CRASH_EXIT_CODE,
    backoff_delays,
)
from repro.errors import ClusterError, SimulationError

TIME_SCALE = 0.002
TIMEOUT = 15.0


class TestWorkerCrash:
    def test_mid_run_crash_raises_typed_partial_run_error(self) -> None:
        started = time.perf_counter()
        with pytest.raises(ClusterError) as excinfo:
            run_cluster(
                "basic",
                scenario="deadlock",
                seed=0,
                time_scale=TIME_SCALE,
                timeout=TIMEOUT,
                worker_env={"REPRO_CLUSTER_TEST_EXIT_AFTER": "2"},
            )
        elapsed = time.perf_counter() - started
        # detected via EOF/exit status, far inside the wall budget -- the
        # whole point: a dead worker is a report, not a timeout.
        assert elapsed < TIMEOUT / 2, f"took {elapsed:.1f}s; crash path hung"
        error = excinfo.value
        assert error.failures, "ClusterError must carry WorkerFailure records"
        failure = error.failures[0]
        assert failure.worker >= 0
        assert failure.reason
        assert str(failure.worker) in str(error) or failure.node in str(error)

    def test_crash_exit_code_is_recorded_when_watchdog_sees_it(self) -> None:
        # Drive the transport directly so the failure list stays readable
        # after the raise.
        transport = ClusterTransport(
            seed=0,
            time_scale=TIME_SCALE,
            max_wall_seconds=TIMEOUT,
            worker_env={"REPRO_CLUSTER_TEST_EXIT_AFTER": "1"},
        )
        try:

            class Echo:
                def __init__(self, pid):
                    self.pid = pid
                    self.ctx = None

                def attach_context(self, ctx):
                    self.ctx = ctx

                def on_message(self, sender, message):
                    if isinstance(message, int) and message < 50:
                        self.ctx.send(sender, message + 1)

            a, b = Echo("a"), Echo("b")
            transport.register(a)
            transport.register(b)
            a.ctx.send("b", 0)
            with pytest.raises(ClusterError):
                transport.run_to_quiescence()
            assert transport.worker_failures
            recorded = {f.returncode for f in transport.worker_failures}
            # EOF may be seen before the process is reaped; when the exit
            # status made it into the record it must be the crash code.
            assert recorded <= {None, CRASH_EXIT_CODE}
        finally:
            transport.close()


class TestConnectRobustness:
    def test_slow_starting_worker_is_awaited(self) -> None:
        report = run_cluster(
            "basic",
            scenario="deadlock",
            seed=0,
            time_scale=TIME_SCALE,
            timeout=TIMEOUT,
            worker_env={"REPRO_CLUSTER_TEST_STARTUP_DELAY": "0.6"},
        )
        assert report.ok

    def test_connect_failures_recovered_by_backoff(self) -> None:
        report = run_cluster(
            "basic",
            scenario="deadlock",
            seed=0,
            time_scale=TIME_SCALE,
            timeout=TIMEOUT,
            worker_env={"REPRO_CLUSTER_TEST_CONNECT_FAILS": "2"},
        )
        assert report.ok

    def test_connect_timeout_is_a_typed_bring_up_failure(self) -> None:
        transport = ClusterTransport(
            seed=0,
            time_scale=TIME_SCALE,
            max_wall_seconds=TIMEOUT,
            connect_timeout=0.5,
            worker_env={"REPRO_CLUSTER_TEST_STARTUP_DELAY": "30"},
        )
        try:

            class Node:
                pid = "n"

                def attach_context(self, ctx):
                    pass

                def on_message(self, sender, message):
                    pass

            transport.register(Node())
            with pytest.raises(ClusterError, match="connect_timeout"):
                transport.run_to_quiescence()
            # a failed bring-up poisons the transport
            with pytest.raises(SimulationError, match="closed"):
                transport.run_to_quiescence()
        finally:
            transport.close()


class TestBackoffSchedule:
    def test_deterministic_exponential_capped(self) -> None:
        delays = backoff_delays()
        assert delays == backoff_delays()  # no jitter, fully reproducible
        assert delays[0] == BACKOFF_BASE
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        assert max(delays) == BACKOFF_CAP
        assert all(delay <= BACKOFF_CAP for delay in delays)

    def test_schedule_shape(self) -> None:
        assert backoff_delays(attempts=4, base=0.1, cap=0.5) == [0.1, 0.2, 0.4, 0.5]


class TestRegistrationGuards:
    def test_register_after_start_is_rejected(self) -> None:
        transport = ClusterTransport(seed=0, time_scale=TIME_SCALE, max_wall_seconds=TIMEOUT)
        try:

            class Node:
                def __init__(self, pid):
                    self.pid = pid

                def attach_context(self, ctx):
                    pass

                def on_message(self, sender, message):
                    pass

            transport.register(Node("a"))
            transport.run_to_quiescence()
            with pytest.raises(SimulationError, match="after the first"):
                transport.register(Node("b"))
        finally:
            transport.close()
