"""Cross-runtime conformance: every variant, both scenarios, cluster backend.

The mirror of ``tests/transport/test_live_conformance.py`` on the
multi-process runtime: each registered detector variant runs its standard
deadlock and clean scenarios with one worker OS process per node across
three seeds.  Delivery now crosses real socket frames and process
boundaries, but the paper's claims are schedule-free -- QRP2 soundness
at the instant of declaration and QRP1 completeness must hold on *every*
P4-legal delivery order, so zero violations is a hard requirement here
too.
"""

from __future__ import annotations

import pytest

from repro.cluster import run_cluster
from repro.core import all_variants

#: compressed clock for tests: 1 virtual unit = 2 ms wall.
TIME_SCALE = 0.002
#: generous per-run wall budget; a hang is a failure, not a wait.
TIMEOUT = 20.0
SEEDS = (0, 1, 2)


def _variant_ids() -> list[str]:
    return [variant.name for variant in all_variants()]


@pytest.fixture(scope="module", autouse=True)
def _warm_up() -> None:
    """One throwaway cluster run before any timed assertion.

    The first run of the session pays import, event-loop, and worker
    spawn costs; on a compressed clock those wall milliseconds would
    skew timing-sensitive detectors (timeout).
    """
    run_cluster("basic", scenario="clean", seed=0, time_scale=TIME_SCALE, timeout=TIMEOUT)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", _variant_ids())
class TestEveryVariantOnCluster:
    def test_deadlock_scenario_detects_soundly(self, name: str, seed: int) -> None:
        report = run_cluster(
            name, scenario="deadlock", seed=seed, time_scale=TIME_SCALE, timeout=TIMEOUT
        )
        assert report.detected, f"{name} missed a genuine deadlock on the cluster"
        assert report.sound, (
            f"{name} violated instant-of-declaration soundness on the cluster"
        )
        assert report.ok
        assert report.workers >= 1
        assert report.outcome.first_declaration_at is not None
        assert report.detection_latency_seconds is not None
        assert report.detection_latency_seconds > 0.0

    def test_clean_scenario_stays_silent(self, name: str, seed: int) -> None:
        report = run_cluster(
            name, scenario="clean", seed=seed, time_scale=TIME_SCALE, timeout=TIMEOUT
        )
        assert not report.detected, f"{name} declared on a clean cluster run"
        assert report.sound
        assert report.ok
        assert report.outcome.first_declaration_at is None
        assert report.detection_latency_seconds is None


def test_adaptive_policy_passes_conformance_on_cluster() -> None:
    """The cluster-transport lane of the three-transport adaptive matrix
    (sim lane: tests/core/test_scheduling.py; live lane:
    tests/transport/test_live_conformance.py)."""
    report = run_cluster(
        "basic",
        scenario="deadlock",
        seed=0,
        time_scale=TIME_SCALE,
        timeout=TIMEOUT,
        policy="adaptive",
    )
    assert report.detected
    assert report.sound


def test_tcp_channel_passes_conformance() -> None:
    """Loopback TCP instead of Unix sockets: same contract, same outcome."""
    report = run_cluster(
        "basic",
        scenario="deadlock",
        seed=0,
        time_scale=TIME_SCALE,
        timeout=TIMEOUT,
        channel="tcp",
    )
    assert report.ok
    assert report.channel == "tcp"
    assert report.messages_delivered > 0


def test_random_workload_detects_completely() -> None:
    """The large random workload: churn, deadlocks at random, QRP1 gate."""
    report = run_cluster(
        "basic",
        scenario="random",
        seed=1,
        time_scale=TIME_SCALE,
        timeout=30.0,
        n_vertices=6,
        duration=30.0,
    )
    assert report.sound
    assert report.outcome.complete
    assert report.ok
    assert report.workers == 6
