"""Targeted tests for less-travelled branches across the library."""

from __future__ import annotations

import pytest

from repro._ids import VertexId
from repro.basic.initiation import ManualInitiation
from repro.basic.messages import Probe
from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.ormodel.system import OrSystem
from repro.workloads.scenarios import schedule_cycle


def v(i: int) -> VertexId:
    return VertexId(i)


class TestStrictMode:
    def test_strict_system_raises_on_unsound_declaration(self) -> None:
        # The scripted non-FIFO phantom from the ablation suite, but with
        # strict=True: the system must raise at the declaration instant.
        system = BasicSystem(
            n_vertices=4,
            fifo=False,
            auto_reply=False,
            initiation=ManualInitiation(),
            strict=True,
        )

        def override(sender, destination, message):
            if isinstance(message, Probe) and sender == v(1) and destination == v(2):
                return 40.0
            return 1.0

        system.network.delay_override = override
        sim = system.simulator
        sim.schedule_at(0.0, lambda: system.vertex(0).request([v(1)]))
        sim.schedule_at(0.0, lambda: system.vertex(1).request([v(2)]))
        sim.schedule_at(2.0, system.vertex(0).initiate_probe_computation)
        sim.schedule_at(4.0, lambda: system.vertex(2).reply_to(v(1)))
        sim.schedule_at(6.0, lambda: system.vertex(1).reply_to(v(0)))
        sim.schedule_at(8.0, lambda: system.vertex(0).request([v(3)]))
        sim.schedule_at(9.0, lambda: system.vertex(2).request([v(0)]))
        sim.schedule_at(11.0, lambda: system.vertex(1).request([v(2)]))
        with pytest.raises(AssertionError, match="QRP2"):
            system.run_to_quiescence()


class TestTraceDisabledModes:
    def test_basic_system_works_without_trace(self) -> None:
        system = BasicSystem(n_vertices=3, trace=False)
        schedule_cycle(system, [0, 1, 2])
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()
        system.assert_completeness()
        # Metrics still collected; trace log empty.
        assert system.metrics.counter_value("basic.probes.sent") > 0
        assert len(system.simulator.tracer) == 0
        # Formation tracking (via subscribers) still works when disabled.
        assert system.deadlock_formed_at

    def test_ddb_system_works_without_trace(self) -> None:
        from tests.ddb.helpers import cross_deadlock, two_site_system

        system = two_site_system(trace=False)
        cross_deadlock(system)
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()

    def test_or_system_works_without_trace(self) -> None:
        system = OrSystem(n_vertices=3, trace=False)
        for i in range(3):
            system.schedule_request(0.5 * i, i, [(i + 1) % 3])
        system.run_to_quiescence()
        assert system.declarations
        system.assert_soundness()


class TestValidation:
    def test_basic_system_needs_a_vertex(self) -> None:
        with pytest.raises(ConfigurationError):
            BasicSystem(n_vertices=0)

    def test_or_system_needs_a_vertex(self) -> None:
        with pytest.raises(ConfigurationError):
            OrSystem(n_vertices=0)


class TestServiceRescheduling:
    def test_service_fire_while_reblocked_defers(self) -> None:
        # Vertex 1 receives a request, schedules service, then blocks
        # before the service fires: G3 forbids the reply; it must go out
        # only after vertex 1 unblocks again.
        system = BasicSystem(n_vertices=3, service_delay=2.0)
        system.schedule_request(0.0, 0, [1])       # service would fire ~3.0
        system.schedule_request(2.5, 1, [2])       # 1 blocks before that
        system.run(until=4.0)
        assert v(0) in system.vertex(1).pending_in  # reply deferred
        system.run_to_quiescence()
        assert system.vertex(0).active              # ... and delivered later

    def test_unblocked_vertex_services_backlog(self) -> None:
        system = BasicSystem(n_vertices=4, service_delay=1.0)
        system.schedule_request(0.0, 1, [2])
        system.schedule_request(0.2, 0, [1])
        system.schedule_request(0.4, 3, [1])
        system.run_to_quiescence()
        for i in range(4):
            assert system.vertex(i).active
        assert len(system.oracle) == 0


class TestDdbRestartValidation:
    def test_restart_unknown_transaction_raises(self) -> None:
        from tests.ddb.helpers import two_site_system
        from repro._ids import TransactionId

        system = two_site_system()
        with pytest.raises(KeyError):
            system.restart(TransactionId(99))
