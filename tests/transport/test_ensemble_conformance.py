"""Cross-backend conformance for the ensemble workload families.

Every registered ensemble family runs one deadlock-forming and one clean
configuration on all three transport backends -- the deterministic
simulator, the asyncio runtime, and the multi-process cluster.  The
graph draw is a pure function of the spec (seeded off-transport), so
each backend sees the same wait graph; QRP2 soundness must hold on all
of them, QRP1 completeness by quiescence, and on the simulator the
basic-model runs are additionally checked against the section 4 probe
bounds span by span.
"""

from __future__ import annotations

import pytest

from repro.cluster.transport import ClusterTransport
from repro.core.registry import get_variant
from repro.live.transport import AsyncioTransport
from repro.obs.spans import build_spans
from repro.workloads.provision import provision_workload
from repro.workloads.spec import WorkloadSpec, make_params

#: compressed clock for the wall-clock backends: 1 virtual unit = 2 ms.
TIME_SCALE = 0.002
TIMEOUT = 30.0

#: (family, kind) -> a spec known to deadlock / known to drain clean.
CONFIGS: dict[tuple[str, str], WorkloadSpec] = {
    ("er", "deadlock"): WorkloadSpec(
        family="er", n=8, seed=0, params=make_params(p=0.35)
    ),
    ("er", "clean"): WorkloadSpec(
        family="er", n=8, seed=8, params=make_params(p=0.35)
    ),
    ("ba", "deadlock"): WorkloadSpec(
        family="ba", n=8, seed=0, params=make_params(m=2)
    ),
    # m=1 grows a tree; no orientation of a tree has a cycle.
    ("ba", "clean"): WorkloadSpec(family="ba", n=8, seed=0, params=make_params(m=1)),
    ("ddb-mix", "deadlock"): WorkloadSpec(
        family="ddb-mix", n=2, seed=0, duration=60.0, params=make_params(load=2.0)
    ),
    ("ddb-mix", "clean"): WorkloadSpec(
        family="ddb-mix", n=2, seed=0, duration=60.0, params=make_params(load=0.3)
    ),
    ("ddb-hot", "deadlock"): WorkloadSpec(
        family="ddb-hot", n=2, seed=0, duration=60.0, params=make_params(load=2.0)
    ),
    ("ddb-hot", "clean"): WorkloadSpec(
        family="ddb-hot", n=2, seed=0, duration=60.0, params=make_params(load=0.3)
    ),
}

MODEL_VARIANTS = {"er": "basic", "ba": "basic", "ddb-mix": "ddb", "ddb-hot": "ddb"}


def _run(spec: WorkloadSpec, backend: str):
    variant = get_variant(MODEL_VARIANTS[spec.family])
    if backend == "sim":
        run = provision_workload(variant, spec)
        run.run_to_quiescence()
        return run
    transport_cls = AsyncioTransport if backend == "live" else ClusterTransport
    transport = transport_cls(
        seed=spec.seed, time_scale=TIME_SCALE, max_wall_seconds=TIMEOUT
    )
    try:
        run = provision_workload(variant, spec, transport=transport)
        run.run_to_quiescence()
    finally:
        transport.close()
    return run


@pytest.mark.parametrize("backend", ("sim", "live", "cluster"))
@pytest.mark.parametrize(
    "family,kind", sorted(CONFIGS), ids=lambda value: str(value)
)
class TestEnsemblesEverywhere:
    def test_sound_and_complete_on_every_backend(
        self, family: str, kind: str, backend: str
    ) -> None:
        spec = CONFIGS[(family, kind)]
        run = _run(spec, backend)
        outcome = run.summarize()
        assert outcome.soundness_violations == 0, (
            f"{spec.workload_id} unsound on the {backend} backend"
        )
        assert outcome.complete, (
            f"{spec.workload_id} missed a deadlock on the {backend} backend"
        )
        if kind == "deadlock":
            assert outcome.declarations > 0, (
                f"{spec.workload_id} failed to deadlock on the {backend} backend"
            )
        else:
            assert outcome.declarations == 0, (
                f"{spec.workload_id} declared on a clean {backend} run"
            )


@pytest.mark.parametrize(
    "family,kind", [key for key in sorted(CONFIGS) if MODEL_VARIANTS[key[0]] == "basic"]
)
def test_section4_probe_bounds_hold(family: str, kind: str) -> None:
    spec = CONFIGS[(family, kind)]
    run = _run(spec, "sim")
    spans = build_spans(run.system.simulator.tracer)
    for span in spans:
        span.check_bounds(n_vertices=spec.n)  # raises BoundViolation on breach
    if kind == "deadlock":
        assert spans, "a deadlocked run must have probe computations"
