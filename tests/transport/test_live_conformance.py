"""Cross-runtime conformance: every variant, both scenarios, live backend.

The mirror of ``tests/core/test_conformance.py`` on the asyncio runtime:
each registered detector variant runs its standard deadlock and clean
scenarios against :class:`~repro.live.transport.AsyncioTransport` across
three seeds.  Live interleavings are nondeterministic, but the paper's
claims are schedule-free -- QRP2 soundness at the instant of declaration
and QRP1 completeness must hold on *every* P4-legal delivery order, so
zero violations here is a hard requirement, not a statistical one.
"""

from __future__ import annotations

import pytest

from repro.core import all_variants
from repro.live import run_live

#: compressed clock for tests: 1 virtual unit = 2 ms wall.
TIME_SCALE = 0.002
#: generous per-run wall budget; a hang is a failure, not a wait.
TIMEOUT = 20.0
SEEDS = (0, 1, 2)


def _variant_ids() -> list[str]:
    return [variant.name for variant in all_variants()]


def _policy_variant_ids() -> list[str]:
    """Variants with an initiation seam: overlays bind to a host system
    and take no policy (provision_workload rejects the combination)."""
    return [
        variant.name
        for variant in all_variants()
        if variant.capabilities.kind != "overlay"
    ]


@pytest.fixture(scope="module", autouse=True)
def _warm_up() -> None:
    """One throwaway live run before any timed assertion.

    The first run of the session pays import and event-loop warm-up
    costs; on a compressed clock those wall milliseconds masquerade as
    virtual time and would skew timing-sensitive detectors (timeout).
    """
    run_live("basic", scenario="clean", seed=0, time_scale=TIME_SCALE, timeout=TIMEOUT)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", _variant_ids())
class TestEveryVariantLive:
    def test_deadlock_scenario_detects_soundly(self, name: str, seed: int) -> None:
        report = run_live(
            name, scenario="deadlock", seed=seed, time_scale=TIME_SCALE, timeout=TIMEOUT
        )
        assert report.detected, f"{name} missed a genuine deadlock on the live runtime"
        assert report.sound, (
            f"{name} violated instant-of-declaration soundness on the live runtime"
        )
        assert report.outcome.first_declaration_at is not None
        assert report.detection_latency_seconds is not None
        assert report.detection_latency_seconds > 0.0

    def test_clean_scenario_stays_silent(self, name: str, seed: int) -> None:
        report = run_live(
            name, scenario="clean", seed=seed, time_scale=TIME_SCALE, timeout=TIMEOUT
        )
        assert not report.detected, f"{name} declared on a clean live run"
        assert report.sound
        assert report.outcome.first_declaration_at is None
        assert report.detection_latency_seconds is None


@pytest.mark.parametrize("name", _policy_variant_ids())
class TestAdaptivePolicyLive:
    """The live-transport lane of the three-transport adaptive matrix
    (sim lane: tests/core/test_scheduling.py; cluster lane:
    tests/cluster/test_cluster_conformance.py)."""

    def test_adaptive_deadlock_detects_soundly(self, name: str) -> None:
        report = run_live(
            name,
            scenario="deadlock",
            seed=0,
            time_scale=TIME_SCALE,
            timeout=TIMEOUT,
            policy="adaptive",
        )
        assert report.detected, f"{name} missed a deadlock under the adaptive policy"
        assert report.sound

    def test_adaptive_clean_stays_silent(self, name: str) -> None:
        report = run_live(
            name,
            scenario="clean",
            seed=0,
            time_scale=TIME_SCALE,
            timeout=TIMEOUT,
            policy="adaptive",
        )
        assert not report.detected
        assert report.sound


@pytest.mark.parametrize("family", ("er", "ba"))
def test_or_model_runs_the_graph_ensembles_live(family: str) -> None:
    """Cross-backend half of the ensembles-on-OR capability: the same
    family names that drive the basic model resolve and run on the OR
    model's live runtime (the sim half lives in
    tests/workloads/test_families.py)."""
    report = run_live(
        "ormodel",
        scenario=family,
        seed=1,
        time_scale=TIME_SCALE,
        timeout=TIMEOUT,
    )
    assert report.sound
    assert report.outcome.complete
