"""The transport contract suite: executable axiom P4.

Every :class:`~repro.core.transport.Transport` backend must deliver
reliably (no loss, no duplication), keep per-channel FIFO order whatever
delays are drawn, and fire timers in local-clock order.  This suite runs
the same assertions against the deterministic simulator backend, the
wall-clock asyncio backend, and the multi-process cluster backend --
passing here is what licenses running the same protocol code on any of
them.
"""

from __future__ import annotations

import pytest

from repro.cluster.transport import ClusterTransport
from repro.core.transport import Transport
from repro.errors import SimulationError
from repro.live.transport import AsyncioTransport
from repro.sim.network import UniformDelay
from repro.sim.process import Process
from repro.sim.transport import SimTransport


class Recorder(Process):
    """Appends every delivery as ``(sender, message)``."""

    def __init__(self, pid) -> None:
        super().__init__(pid)
        self.seen: list[tuple[object, object]] = []

    def on_message(self, sender, message) -> None:
        self.seen.append((sender, message))


def _build(backend: str, seed: int = 0, delay_model=None) -> Transport:
    if backend == "sim":
        from repro.core.assembly import build_runtime

        return build_runtime(seed=seed, delay_model=delay_model).transport
    if backend == "cluster":
        # Same tiny time scale; the FIFO and delivery assertions now hold
        # across real process boundaries and socket frames.
        return ClusterTransport(
            seed=seed, delay_model=delay_model, time_scale=0.001, max_wall_seconds=20.0
        )
    # Tiny time scale: drawn delays become sub-millisecond sleeps, so the
    # whole suite stays fast while the loop genuinely interleaves tasks.
    return AsyncioTransport(
        seed=seed, delay_model=delay_model, time_scale=0.001, max_wall_seconds=20.0
    )


@pytest.fixture(params=["sim", "asyncio", "cluster"])
def backend(request) -> str:
    return request.param


class TestP4Fifo:
    def test_per_channel_fifo_under_randomized_delays(self, backend) -> None:
        # Heavy delay spread: successive messages frequently draw wildly
        # different nominal delays and would reorder without the FIFO
        # guarantee.
        transport = _build(backend, seed=7, delay_model=UniformDelay(0.1, 3.0))
        try:
            sender = Recorder("src")
            receiver = Recorder("dst")
            transport.register(sender)
            transport.register(receiver)
            for i in range(60):
                sender.send("dst", i)
            transport.run_to_quiescence()
            assert [message for _, message in receiver.seen] == list(range(60))
        finally:
            transport.close()

    def test_independent_channels_each_stay_fifo(self, backend) -> None:
        transport = _build(backend, seed=11, delay_model=UniformDelay(0.1, 2.0))
        try:
            receiver = Recorder("hub")
            transport.register(receiver)
            senders = [Recorder(f"s{i}") for i in range(3)]
            for process in senders:
                transport.register(process)
            for i in range(20):
                for process in senders:
                    process.send("hub", i)
            transport.run_to_quiescence()
            for process in senders:
                channel = [m for s, m in receiver.seen if s == process.pid]
                assert channel == list(range(20)), f"channel {process.pid} reordered"
        finally:
            transport.close()

    def test_no_message_lost_or_duplicated(self, backend) -> None:
        transport = _build(backend, seed=3, delay_model=UniformDelay(0.0, 1.5))
        try:
            sender = Recorder("a")
            receiver = Recorder("b")
            transport.register(sender)
            transport.register(receiver)
            payload = list(range(40))
            for i in payload:
                sender.send("b", i)
            transport.run_to_quiescence()
            assert sorted(m for _, m in receiver.seen) == payload
            assert transport.metrics.counter("net.messages.sent").value == 40
            assert transport.metrics.counter("net.messages.delivered").value == 40
        finally:
            transport.close()


class TestTimers:
    def test_timers_fire_in_delay_order(self, backend) -> None:
        transport = _build(backend)
        try:
            fired: list[str] = []
            # Deliberately scheduled out of order; generous spacing keeps
            # the ordering unambiguous under wall-clock jitter.
            transport.schedule(12.0, lambda: fired.append("late"))
            transport.schedule(2.0, lambda: fired.append("early"))
            transport.schedule(7.0, lambda: fired.append("middle"))
            transport.run_to_quiescence()
            assert fired == ["early", "middle", "late"]
        finally:
            transport.close()

    def test_cancelled_timer_never_fires_and_run_quiesces(self, backend) -> None:
        transport = _build(backend)
        try:
            fired: list[str] = []
            handle = transport.schedule(5.0, lambda: fired.append("cancelled"))
            transport.schedule(2.0, lambda: fired.append("kept"))
            handle.cancel()
            handle.cancel()  # idempotent
            transport.run_to_quiescence()
            assert fired == ["kept"]
        finally:
            transport.close()

    def test_node_timer_sees_advanced_clock(self, backend) -> None:
        transport = _build(backend)
        try:
            node = Recorder("n")
            ctx = transport.register(node)
            observed: list[float] = []
            ctx.set_timer(4.0, lambda: observed.append(ctx.now()))
            transport.run_to_quiescence()
            assert len(observed) == 1
            assert observed[0] >= 4.0

            assert transport.now >= observed[0]
        finally:
            transport.close()


class TestRegistrationAndDriving:
    def test_duplicate_pid_rejected(self, backend) -> None:
        transport = _build(backend)
        try:
            transport.register(Recorder("x"))
            with pytest.raises(SimulationError, match="duplicate process id 'x'"):
                transport.register(Recorder("x"))
        finally:
            transport.close()

    def test_send_to_unknown_process_rejected(self, backend) -> None:
        transport = _build(backend)
        try:
            node = Recorder("known")
            transport.register(node)
            with pytest.raises(SimulationError, match="unknown process"):
                node.send("ghost", "hello")
        finally:
            transport.close()

    def test_run_until_stops_at_predicate(self, backend) -> None:
        transport = _build(backend)
        try:
            sender = Recorder("a")
            receiver = Recorder("b")
            transport.register(sender)
            transport.register(receiver)
            for i in range(10):
                sender.send("b", i)
            satisfied = transport.run_until(lambda: len(receiver.seen) >= 3)
            assert satisfied
            assert len(receiver.seen) >= 3
            transport.run_to_quiescence()
            assert len(receiver.seen) == 10
        finally:
            transport.close()

    def test_run_until_reports_false_on_quiescence(self, backend) -> None:
        transport = _build(backend)
        try:
            transport.register(Recorder("only"))
            assert transport.run_until(lambda: False, max_events=100) is False
        finally:
            transport.close()

    def test_satisfies_structural_transport_protocol(self, backend) -> None:
        transport = _build(backend)
        try:
            assert isinstance(transport, Transport)
            assert transport.name in {"sim", "asyncio", "cluster"}
        finally:
            transport.close()


class TestLiveSpecifics:
    """Behaviour only the wall-clock backend exhibits."""

    def test_sim_transport_adopts_existing_pair(self) -> None:
        from repro.sim.network import Network
        from repro.sim.simulator import Simulator

        simulator = Simulator(seed=5)
        network = Network(simulator)
        transport = SimTransport(simulator, network)
        assert transport.simulator is simulator
        assert transport.now == 0.0

    def test_wall_clock_budget_raises(self) -> None:
        transport = AsyncioTransport(seed=0, time_scale=0.001, max_wall_seconds=0.05)
        try:
            # A timer far beyond the budget: the driver must fail loudly
            # instead of hanging.
            transport.schedule(10_000.0, lambda: None)
            with pytest.raises(SimulationError, match="max_wall_seconds"):
                transport.run_to_quiescence()
        finally:
            transport.close()

    def test_handler_failure_surfaces_in_driver(self) -> None:
        class Exploder(Process):
            def on_message(self, sender, message) -> None:
                raise ValueError("boom in handler")

        transport = AsyncioTransport(seed=0, time_scale=0.001, max_wall_seconds=5.0)
        try:
            sender = Recorder("a")
            transport.register(sender)
            transport.register(Exploder("bad"))
            sender.send("bad", 1)
            with pytest.raises(ValueError, match="boom in handler"):
                transport.run_to_quiescence()
        finally:
            transport.close()

    def test_closed_transport_rejects_running(self) -> None:
        transport = AsyncioTransport(seed=0)
        transport.close()
        transport.close()  # idempotent
        with pytest.raises(SimulationError, match="closed"):
            transport.run_to_quiescence()
