"""The ``repro monitor`` runtime: live run + streaming telemetry exports.

Each test observes a real :class:`~repro.live.transport.AsyncioTransport`
run on a compressed clock, so durations are kept small; what is asserted
is schedule-free (detection, soundness, export file shapes), never an
exact interleaving.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.live.monitor import MonitorReport, run_monitor

#: compressed clock: 1 virtual unit = 2 ms wall; the standard scenarios
#: quiesce within ~20 virtual units.
FAST = {"time_scale": 0.002, "duration": 1.0, "interval": 0.2}


class TestRunMonitor:
    def test_deadlock_run_is_ok_and_detected(self, tmp_path) -> None:
        metrics = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        snapshots = tmp_path / "snapshots.jsonl"
        report = run_monitor(
            "basic",
            scenario="deadlock",
            metrics_out=metrics,
            spans_out=spans,
            snapshots_out=snapshots,
            **FAST,
        )
        assert report.ok and report.detected and report.sound
        assert report.bound_violations == 0
        assert report.ticks >= 2
        assert report.spans_emitted >= 1
        assert report.detection_latencies_seconds

        text = metrics.read_text()
        assert "# TYPE repro_messages_total counter" in text
        assert "repro_declarations_total" in text

        streamed = [json.loads(line) for line in spans.read_text().splitlines()]
        assert len(streamed) == report.spans_emitted
        assert "deadlock" in {span["outcome"] for span in streamed}

        snapshot_lines = [
            json.loads(line) for line in snapshots.read_text().splitlines()
        ]
        # one snapshot per tick plus the final flush
        assert len(snapshot_lines) == report.ticks + 1
        assert snapshot_lines[-1]["schema"] == "repro.obs.metrics-snapshot/1"
        sequences = [line["sequence"] for line in snapshot_lines]
        assert sequences == sorted(sequences)

    def test_clean_run_stays_silent_and_ok(self) -> None:
        report = run_monitor("basic", scenario="clean", **FAST)
        assert report.ok
        assert not report.detected
        assert report.detection_latencies_seconds == ()

    def test_console_stream_renders_ticks(self) -> None:
        console = io.StringIO()
        report = run_monitor("basic", scenario="deadlock", stream=console, **FAST)
        lines = console.getvalue().splitlines()
        assert len(lines) == report.ticks
        assert all(line.startswith("t=") for line in lines)
        assert "slo=off" in lines[-1]
        assert "declared=" in lines[-1]

    def test_impossible_slo_is_flagged_not_ok(self) -> None:
        report = run_monitor(
            "basic", scenario="deadlock", slo_seconds=1e-9, **FAST
        )
        assert report.detected
        assert report.slo_violations == len(report.detection_latencies_seconds) > 0
        assert not report.ok

    def test_generous_slo_is_ok(self) -> None:
        report = run_monitor(
            "basic", scenario="deadlock", slo_seconds=60.0, **FAST
        )
        assert report.slo_violations == 0
        assert report.ok

    @pytest.mark.parametrize("name", ["ddb", "ormodel"])
    def test_other_variants_are_monitorable(self, name: str) -> None:
        report = run_monitor(name, scenario="deadlock", **FAST)
        assert report.detected and report.sound

    def test_invalid_arguments_are_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="duration"):
            run_monitor("basic", duration=0.0)
        with pytest.raises(ConfigurationError, match="interval"):
            run_monitor("basic", interval=-1.0)
        with pytest.raises(ConfigurationError, match="unknown detector variant"):
            run_monitor("nope")


class TestMonitorReport:
    def make(self, **overrides) -> MonitorReport:
        from repro.core.conformance import ConformanceOutcome

        defaults = dict(
            variant="basic",
            scenario="deadlock",
            outcome=ConformanceOutcome(
                variant="basic",
                scenario="deadlock",
                declarations=1,
                soundness_violations=0,
                complete=True,
                undetected_components=0,
                first_declaration_at=3.0,
            ),
            wall_seconds=1.0,
            ticks=4,
            spans_emitted=2,
            bound_violations=0,
            time_scale=0.002,
            slo_seconds=None,
            detection_latencies_seconds=(0.01,),
        )
        defaults.update(overrides)
        return MonitorReport(**defaults)

    def test_ok_requires_detection_on_deadlock_scenario(self) -> None:
        from dataclasses import replace

        report = self.make()
        assert report.ok
        missed = self.make(outcome=replace(report.outcome, declarations=0))
        assert not missed.ok
        # ... but a clean scenario is allowed (required, even) to be silent
        clean = self.make(
            scenario="clean",
            outcome=replace(report.outcome, scenario="clean", declarations=0),
            detection_latencies_seconds=(),
        )
        assert clean.ok

    def test_ok_fails_on_bound_violations(self) -> None:
        assert not self.make(bound_violations=1).ok

    def test_json_document_is_complete(self) -> None:
        document = json.loads(json.dumps(self.make().to_json()))
        assert document["schema"] == "repro.monitor-report/1"
        for key in ("ok", "detected", "sound", "slo_violations", "ticks"):
            assert key in document
