"""Streaming-vs-batch parity: the hard contract of :mod:`repro.obs.stream`.

:func:`~repro.obs.stream.stream_spans` (and a live category-scoped
subscription feeding :class:`~repro.obs.stream.StreamingSpanEngine`) must
reproduce :func:`~repro.obs.spans.build_spans` **field for field** on every
registered variant that exports a probe taxonomy, in both the deadlock and
the clean conformance scenario.  The suite also pins the properties that
make the engine fit for ``repro monitor``: bounded memory (settled spans
are evicted, ``peak_open`` stays far below the number of computations),
zero buffering under ``trace=False``, online section 4 bound detection,
and the ``obs.span.settled`` trace hook.
"""

from __future__ import annotations

import pytest

from repro._ids import ProbeTag
from repro.basic.system import BasicSystem
from repro.core import all_variants, get_variant
from repro.errors import BoundViolation
from repro.obs.spans import SCHEMAS_BY_MODEL, SpanOutcome, build_spans
from repro.obs.stream import (
    StreamingSpanEngine,
    span_sort_key,
    span_to_json,
    stream_spans,
)
from repro.sim import categories
from repro.workloads import scenarios


def monitorable_variants():
    """Every registered variant that can be both monitored and span-folded."""
    return [
        variant
        for variant in all_variants()
        if variant.monitor is not None and variant.capabilities.taxonomy is not None
    ]


def run_scenario(variant, scenario: str, seed: int = 0):
    """Run one conformance scenario with the full trace retained."""
    setup = variant.monitor(scenario, seed)
    setup.system.run_to_quiescence()
    return setup.system


VARIANT_SCENARIOS = [
    (variant.name, scenario)
    for variant in monitorable_variants()
    for scenario in ("deadlock", "clean")
]


class TestBatchParity:
    def test_suite_covers_every_span_schema(self) -> None:
        # if a new model gains a span schema, it must join this suite
        covered = {variant.capabilities.model for variant in monitorable_variants()}
        assert set(SCHEMAS_BY_MODEL) <= covered

    @pytest.mark.parametrize(("name", "scenario"), VARIANT_SCENARIOS)
    def test_stream_spans_equals_build_spans(self, name: str, scenario: str) -> None:
        variant = get_variant(name)
        schema = SCHEMAS_BY_MODEL[variant.capabilities.model]
        system = run_scenario(variant, scenario)
        tracer = system.simulator.tracer
        batch = build_spans(tracer, schema=schema)
        streamed = stream_spans(tracer, schema)
        if scenario == "deadlock":
            assert batch, f"{name}/{scenario} produced no probe computations"
        assert streamed == batch  # dataclass equality: every field, every hop

    @pytest.mark.parametrize(("name", "scenario"), VARIANT_SCENARIOS)
    def test_live_subscription_equals_build_spans(
        self, name: str, scenario: str
    ) -> None:
        # the monitor configuration: the engine folds events as the run
        # produces them, not from a replayed trace.
        variant = get_variant(name)
        schema = SCHEMAS_BY_MODEL[variant.capabilities.model]
        setup = variant.monitor(scenario, 0)
        live: list = []
        engine = StreamingSpanEngine(
            schema, n_vertices=setup.n_nodes, on_span=live.append
        )
        engine.attach(setup.system.simulator.tracer)
        setup.system.run_to_quiescence()
        engine.finish()
        engine.detach(setup.system.simulator.tracer)
        batch = build_spans(setup.system.simulator.tracer, schema=schema)
        assert sorted(live, key=span_sort_key) == batch
        assert engine.emitted == len(batch)
        assert not engine.violations

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_parity_across_seeds_on_mixed_workload(self, seed: int) -> None:
        # ping-pong produces all three outcomes (deadlock never, fizzled
        # and superseded both); parity must hold on the messy cases too.
        system = BasicSystem(n_vertices=6, seed=seed)
        scenarios.schedule_ping_pong(system, [(0, 1), (2, 3), (4, 5)], repetitions=5)
        system.run_to_quiescence()
        tracer = system.simulator.tracer
        streamed = stream_spans(tracer, n_vertices=6)
        assert streamed == build_spans(tracer)
        assert SpanOutcome.SUPERSEDED in {span.outcome for span in streamed}


class TestBoundedMemory:
    def test_settled_spans_are_evicted(self) -> None:
        # 100 ping-pong repetitions on 4 pairs: 800 computations settle,
        # but only a handful are ever open at once.
        system = BasicSystem(n_vertices=8, seed=3, strict=False, trace=False)
        emitted: list = []
        engine = StreamingSpanEngine(n_vertices=8, on_span=emitted.append)
        engine.attach(system.simulator.tracer)
        scenarios.schedule_ping_pong(
            system, [(0, 1), (2, 3), (4, 5), (6, 7)], repetitions=100
        )
        system.run_to_quiescence()
        engine.finish()
        assert engine.emitted == len(emitted) == 800
        assert engine.open_computations == 0
        assert engine.peak_open <= 2 * 8, (
            f"peak_open {engine.peak_open} scales with run length, "
            "not with the open frontier -- eviction is broken"
        )

    def test_trace_false_run_buffers_nothing(self) -> None:
        system = BasicSystem(n_vertices=8, seed=3, strict=False, trace=False)
        engine = StreamingSpanEngine(n_vertices=8)
        engine.attach(system.simulator.tracer)
        scenarios.schedule_ping_pong(system, [(0, 1), (2, 3)], repetitions=20)
        system.run_to_quiescence()
        engine.finish()
        assert engine.emitted
        assert len(system.simulator.tracer) == 0

    def test_eviction_is_deferred_until_a_different_tag(self) -> None:
        # a drained + resolved tag must NOT be evicted by its own events:
        # the receiving handler may still send probes of that tag.
        tag_a = ProbeTag(initiator=0, sequence=1)
        tag_b = ProbeTag(initiator=1, sequence=1)
        emitted: list = []
        engine = StreamingSpanEngine(on_span=emitted.append)
        engine.on_event(_initiated(0.0, tag_a, vertex=0))
        engine.on_event(_sent(0.1, tag_a, source=0, target=1))
        engine.on_event(_net(0.1, tag_a, sent=True, sender=0, destination=1))
        engine.on_event(_net(0.15, tag_a, sent=False, sender=0, destination=1))
        engine.on_event(_received(0.2, tag_a, source=0, target=1))
        engine.on_event(_declared(0.2, tag_a, vertex=0))
        # resolved and drained, but nothing else has happened yet:
        assert emitted == []
        assert engine.open_computations == 1
        # the first event of a *different* tag proves the handler is done
        engine.on_event(_initiated(0.3, tag_b, vertex=1))
        assert [span.tag for span in emitted] == [tag_a]
        assert emitted[0].outcome is SpanOutcome.DEADLOCK
        assert engine.open_computations == 1  # tag_b is now open


class TestOnlineBounds:
    def test_duplicate_edge_probe_is_caught_at_the_event(self) -> None:
        tag = ProbeTag(initiator=0, sequence=1)
        seen: list[BoundViolation] = []
        engine = StreamingSpanEngine(on_violation=seen.append)
        engine.on_event(_sent(0.1, tag, source=0, target=1))
        assert not seen
        engine.on_event(_sent(0.2, tag, source=0, target=1))
        assert len(seen) == 1 and len(engine.violations) == 1
        assert seen[0].bound == "one-probe-per-edge"

    def test_strict_mode_raises_out_of_the_handler(self) -> None:
        tag = ProbeTag(initiator=0, sequence=1)
        engine = StreamingSpanEngine(strict_bounds=True)
        engine.on_event(_sent(0.1, tag, source=0, target=1))
        with pytest.raises(BoundViolation):
            engine.on_event(_sent(0.2, tag, source=0, target=1))

    def test_total_probe_budget_checked_online(self) -> None:
        # 2 vertices allow 2*(2-1) = 2 wait-for edges; a third *distinct*
        # edge (a sliced/corrupt trace) exceeds the total budget without
        # tripping the per-edge bound first.
        tag = ProbeTag(initiator=0, sequence=1)
        engine = StreamingSpanEngine(n_vertices=2, strict_bounds=True)
        engine.on_event(_sent(0.0, tag, source=0, target=1))
        engine.on_event(_sent(1.0, tag, source=1, target=0))
        with pytest.raises(BoundViolation) as exc:
            engine.on_event(_sent(2.0, tag, source=0, target=2))
        assert "probes-le-edges" in str(exc.value)


class TestSettledTraceHook:
    def test_eviction_records_obs_span_settled(self) -> None:
        system = BasicSystem(n_vertices=3, seed=0, trace=False)
        settled: list = []
        tracer = system.simulator.tracer
        tracer.subscribe(
            settled.append, categories=(categories.OBS_SPAN_SETTLED,)
        )
        engine = StreamingSpanEngine(n_vertices=3)
        engine.attach(tracer)
        for i in range(3):
            system.schedule_request(0.5 * i, i, [(i + 1) % 3])
        system.run_to_quiescence()
        engine.finish()
        assert len(settled) == engine.emitted > 0
        outcomes = {event["outcome"] for event in settled}
        assert SpanOutcome.DEADLOCK.value in outcomes
        for event in settled:
            assert isinstance(event["tag"], ProbeTag)
            assert event["probes_sent"] >= 0


class TestSpanJson:
    def test_span_to_json_is_serialisable_and_complete(self) -> None:
        import json

        system = BasicSystem(n_vertices=3, seed=0)
        for i in range(3):
            system.schedule_request(0.5 * i, i, [(i + 1) % 3])
        system.run_to_quiescence()
        spans = build_spans(system.simulator.tracer)
        declared = [s for s in spans if s.outcome is SpanOutcome.DEADLOCK]
        assert declared
        for span in spans:
            document = json.loads(json.dumps(span_to_json(span)))
            assert document["tag"] == str(span.tag)
            assert document["outcome"] == span.outcome.value
            assert document["probes_sent"] == span.probes_sent
            assert len(document["hops"]) == len(span.hops)
        detected = span_to_json(declared[0])
        assert detected["declared_by"] is not None
        assert detected["detection_latency"] > 0


# ---------------------------------------------------------------------------
# synthetic-event helpers (basic schema)
# ---------------------------------------------------------------------------


def _initiated(time: float, tag: ProbeTag, vertex: int):
    from repro.sim.trace import TraceEvent

    return TraceEvent(
        time, categories.BASIC_COMPUTATION_INITIATED, {"vertex": vertex, "tag": tag}
    )


def _sent(time: float, tag: ProbeTag, source: int, target: int):
    from repro.sim.trace import TraceEvent

    return TraceEvent(
        time,
        categories.BASIC_PROBE_SENT,
        {"source": source, "target": target, "tag": tag},
    )


def _received(time: float, tag: ProbeTag, source: int, target: int):
    from repro.sim.trace import TraceEvent

    return TraceEvent(
        time,
        categories.BASIC_PROBE_RECEIVED,
        {"source": source, "target": target, "tag": tag, "meaningful": True},
    )


def _declared(time: float, tag: ProbeTag, vertex: int):
    from repro.sim.trace import TraceEvent

    return TraceEvent(
        time, categories.BASIC_DEADLOCK_DECLARED, {"vertex": vertex, "tag": tag}
    )


def _net(time: float, tag: ProbeTag, *, sent: bool, sender: int, destination: int):
    from types import SimpleNamespace

    from repro.sim.trace import TraceEvent

    category = categories.NET_SENT if sent else categories.NET_DELIVERED
    return TraceEvent(
        time,
        category,
        {
            "sender": sender,
            "destination": destination,
            "message": SimpleNamespace(tag=tag),
        },
    )
