"""Profiler tests: hook lifecycle, report contents, deterministic sampling.

Wall-clock numbers are asserted only for basic sanity (non-negative,
consistent totals); everything stamped into shared simulator state --
the ``sim.queue.depth`` time series and ``profile.queue.sampled`` trace
events -- must be *identical* across same-seed runs, which is the
property that keeps the RPX002 allowlist for this module sound.
"""

from __future__ import annotations

import pytest

from repro.basic.system import BasicSystem
from repro.errors import SimulationError
from repro.obs.profile import SimulatorProfiler, handler_category, profiling
from repro.sim import categories
from repro.sim.simulator import Simulator

from tests.conftest import make_cycle_system


class TestHandlerCategory:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("deliver Probe to v1", "deliver Probe"),
            ("deliver Request to v0", "deliver Request"),
            ("request", "request"),
            ("service t1 at s0", "service"),
            ("", "<anonymous>"),
        ],
    )
    def test_aggregation_key(self, name: str, expected: str) -> None:
        assert handler_category(name) == expected


class TestLifecycle:
    def test_attach_detach(self) -> None:
        simulator = Simulator(seed=0)
        profiler = SimulatorProfiler(simulator)
        profiler.attach()
        assert simulator.profile_hook is profiler
        profiler.detach()
        assert simulator.profile_hook is None

    def test_double_attach_is_rejected(self) -> None:
        simulator = Simulator(seed=0)
        SimulatorProfiler(simulator).attach()
        with pytest.raises(SimulationError, match="already has a profile hook"):
            SimulatorProfiler(simulator).attach()

    def test_detach_when_not_attached_is_rejected(self) -> None:
        simulator = Simulator(seed=0)
        with pytest.raises(SimulationError, match="not attached"):
            SimulatorProfiler(simulator).detach()

    def test_invalid_sample_interval_is_rejected(self) -> None:
        with pytest.raises(SimulationError, match="sample_every"):
            SimulatorProfiler(Simulator(seed=0), sample_every=0)

    def test_context_manager_detaches_on_exit(self) -> None:
        system = make_cycle_system(3)
        with profiling(system.simulator) as profiler:
            assert system.simulator.profile_hook is profiler
            system.run_to_quiescence()
        assert system.simulator.profile_hook is None

    def test_context_manager_detaches_on_error(self) -> None:
        simulator = Simulator(seed=0)
        with pytest.raises(RuntimeError):
            with profiling(simulator):
                raise RuntimeError("boom")
        assert simulator.profile_hook is None


class TestReport:
    def run_profiled(self, k: int = 4, sample_every: int = 8):
        system = make_cycle_system(k)
        with profiling(system.simulator, sample_every=sample_every) as profiler:
            system.run_to_quiescence()
        return system, profiler.report()

    def test_counts_every_executed_event(self) -> None:
        system, report = self.run_profiled()
        assert report.events == system.simulator.events_executed
        assert report.events == sum(c.events for c in report.by_category)

    def test_wall_clock_totals_are_consistent(self) -> None:
        _, report = self.run_profiled()
        assert report.handler_seconds >= 0
        assert report.wall_seconds >= report.handler_seconds
        assert report.events_per_second > 0
        total = sum(c.wall_seconds for c in report.by_category)
        assert total == pytest.approx(report.handler_seconds)

    def test_categories_separate_detection_from_base_traffic(self) -> None:
        _, report = self.run_profiled()
        names = {c.category for c in report.by_category}
        assert "deliver Probe" in names
        assert "deliver Request" in names

    def test_queue_depth_signal(self) -> None:
        system, report = self.run_profiled(sample_every=4)
        assert report.queue_depth_max >= 1
        series = system.simulator.metrics.timeseries("sim.queue.depth")
        assert len(series) == report.queue_depth_samples > 0
        assert system.simulator.metrics.gauge("sim.queue.depth").value >= 0

    def test_gauge_backed_counters_match_the_trace(self) -> None:
        # regression for the rewrite onto repro.obs.metrics.GaugeMetric:
        # with sample_every=1 every executed event is sampled, so the
        # report's high-water mark and sample count must equal what the
        # trace itself records -- byte-identical to the hand-rolled ints
        # the profiler used before.
        system, report = self.run_profiled(sample_every=1)
        sampled = system.simulator.tracer.events(categories.PROFILE_QUEUE_SAMPLED)
        assert report.queue_depth_samples == len(sampled) == report.events
        assert report.queue_depth_max == max(event["depth"] for event in sampled)
        assert isinstance(report.queue_depth_max, int)

    def test_render_mentions_the_headline_numbers(self) -> None:
        _, report = self.run_profiled()
        text = report.render()
        assert "events/s" in text
        assert "sim.queue.depth" in text
        assert "deliver Probe" in text


class TestDeterminism:
    def virtual_artifacts(self, seed: int) -> tuple:
        system = BasicSystem(n_vertices=5, seed=seed)
        for i in range(5):
            system.schedule_request(i * 0.5, i, [(i + 1) % 5])
        with profiling(system.simulator, sample_every=8):
            system.run_to_quiescence()
        samples = system.simulator.metrics.timeseries("sim.queue.depth").samples
        trace = [
            (event.time, event["depth"], event["events_executed"])
            for event in system.simulator.tracer.events(categories.PROFILE_QUEUE_SAMPLED)
        ]
        return samples, trace

    def test_virtual_time_artifacts_identical_across_runs(self) -> None:
        assert self.virtual_artifacts(7) == self.virtual_artifacts(7)

    def test_profiling_does_not_change_the_simulation(self) -> None:
        bare = make_cycle_system(4)
        bare.run_to_quiescence()
        profiled = make_cycle_system(4)
        with profiling(profiled.simulator):
            profiled.run_to_quiescence()
        assert [
            (e.time, e.category) for e in bare.simulator.tracer
        ] == [
            (e.time, e.category)
            for e in profiled.simulator.tracer
            if e.category != categories.PROFILE_QUEUE_SAMPLED
        ]
        assert bare.declarations == profiled.declarations
