"""Export tests: lossless JSONL round-trip, Chrome schema sanity, golden file.

The round-trip property is the contract that makes offline analysis
trustworthy: ``events_from_jsonl(events_to_jsonl(t)) == list(t)`` event
for event, payload types included (ProbeTag, frozen message dataclasses,
tuples...).  The Chrome export is checked against :func:`validate_chrome`
(what Perfetto needs) and the span pipeline is pinned by a golden file
rendered from the deterministic quickstart scenario.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._ids import ProbeTag
from repro.analysis.timeline import render_spans
from repro.basic.messages import Probe
from repro.obs.export import (
    TraceEncodingError,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.spans import build_spans
from repro.sim.trace import TraceEvent, Tracer

from tests.conftest import make_cycle_system

GOLDEN = Path(__file__).parent / "golden_quickstart_spans.txt"


def quickstart_tracer() -> Tracer:
    system = make_cycle_system(3)
    system.run_to_quiescence()
    return system.simulator.tracer


class TestJsonlRoundTrip:
    def test_full_run_round_trips_event_for_event(self) -> None:
        tracer = quickstart_tracer()
        original = list(tracer)
        assert original, "quickstart run produced no trace"
        restored = events_from_jsonl(events_to_jsonl(tracer))
        assert restored == original

    def test_payload_types_survive(self) -> None:
        tag = ProbeTag(initiator=3, sequence=7)
        event = TraceEvent(
            time=1.5,
            category="net.sent",
            details={
                "message": Probe(tag=tag),
                "pair": (1, 2),
                "flags": frozenset({"a", "b"}),
                "nested": {"keys": [1, 2, 3]},
            },
        )
        restored = event_from_dict(json.loads(json.dumps(event_to_dict(event))))
        assert restored == event
        assert isinstance(restored["message"], Probe)
        assert restored["message"].tag == tag
        assert restored["pair"] == (1, 2)
        assert restored["flags"] == frozenset({"a", "b"})

    def test_marker_key_in_plain_dict_is_escaped(self) -> None:
        event = TraceEvent(time=0.0, category="x", details={"d": {"~kind": "gotcha"}})
        restored = events_from_jsonl(events_to_jsonl([event]))
        assert restored == [event]
        assert restored[0]["d"] == {"~kind": "gotcha"}

    def test_file_round_trip(self, tmp_path) -> None:
        tracer = quickstart_tracer()
        path = write_jsonl(tmp_path / "trace.jsonl", tracer)
        assert read_jsonl(path) == list(tracer)
        # one JSON object per line, parseable independently
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer)
        for line in lines:
            json.loads(line)

    def test_reimported_trace_feeds_the_span_builder(self, tmp_path) -> None:
        tracer = quickstart_tracer()
        path = write_jsonl(tmp_path / "trace.jsonl", tracer)
        direct = render_spans(build_spans(tracer))
        offline = render_spans(build_spans(read_jsonl(path)))
        assert offline == direct

    def test_non_finite_floats_are_rejected(self) -> None:
        event = TraceEvent(time=0.0, category="x", details={"v": float("nan")})
        with pytest.raises(TraceEncodingError, match="non-finite"):
            events_to_jsonl([event])

    def test_bad_line_reports_line_number(self) -> None:
        good = events_to_jsonl([TraceEvent(time=0.0, category="x", details={})])
        with pytest.raises(TraceEncodingError, match="line 2"):
            events_from_jsonl(good + "{not json}\n")

    def test_untrusted_type_path_is_refused(self) -> None:
        payload = {
            "time": 0.0,
            "category": "x",
            "details": {
                "m": {"~kind": "dataclass", "type": "os.DirEntry", "fields": {}}
            },
        }
        with pytest.raises(TraceEncodingError, match="trusted"):
            event_from_dict(payload)


class TestChromeExport:
    def test_document_passes_schema_sanity(self) -> None:
        document = events_to_chrome(quickstart_tracer())
        assert validate_chrome(document) == []

    def test_document_is_plain_json(self, tmp_path) -> None:
        path = write_chrome(tmp_path / "trace.json", quickstart_tracer())
        document = json.loads(path.read_text())
        assert validate_chrome(document) == []
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["model"] == "basic"

    def test_tracks_spans_flows_and_markers_present(self) -> None:
        document = events_to_chrome(quickstart_tracer())
        events = document["traceEvents"]
        by_phase: dict[str, list[dict]] = {}
        for entry in events:
            by_phase.setdefault(entry["ph"], []).append(entry)
        thread_names = {
            e["args"]["name"] for e in by_phase["M"] if e["name"] == "thread_name"
        }
        assert thread_names == {"v0", "v1", "v2"}  # one track per vertex
        slices = by_phase["X"]
        assert any(e["cat"] == "probe.computation" for e in slices)
        assert any(e["cat"] == "probe.hop" for e in slices)
        assert len(by_phase["s"]) == len(by_phase["f"])  # matched flow arrows
        assert any(e["name"].startswith("DEADLOCK") for e in by_phase["i"])

    def test_computation_slice_args_summarise_the_span(self) -> None:
        document = events_to_chrome(quickstart_tracer())
        computations = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "probe.computation"
        ]
        assert computations
        for entry in computations:
            args = entry["args"]
            assert args["outcome"] in {"deadlock", "fizzled", "superseded"}
            assert args["probes_sent"] >= args["meaningful_probes"] >= 0
            assert entry["dur"] >= 1.0  # visible even for instant spans

    def test_validator_flags_broken_documents(self) -> None:
        assert validate_chrome({}) == ["document has no 'traceEvents' array"]
        problems = validate_chrome(
            {
                "traceEvents": [
                    {"ph": "Z", "name": "bad"},
                    {"ph": "X", "name": "n", "pid": 0, "tid": 0, "ts": 1.0},
                    {"ph": "s", "name": "n", "pid": 0, "tid": 0, "ts": 1.0, "id": 9},
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("missing numeric 'dur'" in p for p in problems)
        assert any("unmatched phases" in p for p in problems)


class TestGoldenSpans:
    def test_quickstart_spans_match_golden_file(self) -> None:
        """The deterministic quickstart pipeline is pinned end to end.

        If this fails because of an *intentional* change to the span fold
        or the renderer, regenerate with:

            PYTHONPATH=src python -c "
            from tests.obs.test_export import regenerate_golden
            regenerate_golden()"
        """
        rendered = render_spans(build_spans(quickstart_tracer()))
        assert rendered == GOLDEN.read_text().rstrip("\n")


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    rendered = render_spans(build_spans(quickstart_tracer()))
    GOLDEN.write_text(rendered + "\n")
