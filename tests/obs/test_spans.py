"""Span reconstruction tests: one span per probe computation ``(i, n)``.

Covers the three outcomes (deadlock / fizzled / superseded), the per-hop
latency split, and the machine-checked section 4 bounds -- including the
negative case where a synthetic trace that violates "one probe per edge
per computation" must raise :class:`~repro.errors.BoundViolation`.
"""

from __future__ import annotations

import pytest

from repro._ids import ProbeTag, VertexId
from repro.basic.system import BasicSystem
from repro.errors import BoundViolation
from repro.obs.spans import (
    BASIC_SPAN_SCHEMA,
    DDB_SPAN_SCHEMA,
    SCHEMAS_BY_MODEL,
    ProbeComputationSpan,
    ProbeHop,
    SpanOutcome,
    build_spans,
    check_probe_bounds,
)
from repro.sim import categories
from repro.sim.trace import Tracer
from repro.workloads import scenarios

from tests.conftest import make_cycle_system
from tests.ddb.helpers import cross_deadlock, two_site_system


def run_cycle(k: int, seed: int = 0) -> BasicSystem:
    system = make_cycle_system(k, seed=seed)
    system.run_to_quiescence()
    return system


class TestDeadlockOutcome:
    def test_cycle_spans_declare_deadlock(self) -> None:
        system = run_cycle(3)
        spans = build_spans(system.simulator.tracer)
        assert spans, "cycle run produced no probe computations"
        declared = [s for s in spans if s.outcome is SpanOutcome.DEADLOCK]
        assert declared, "no span carries the deadlock outcome"
        for span in declared:
            assert span.declared_at is not None
            assert span.declared_by == VertexId(span.initiator)
            assert span.detection_latency is not None
            assert span.detection_latency > 0

    def test_span_keyed_by_paper_tag(self) -> None:
        system = run_cycle(3)
        spans = build_spans(system.simulator.tracer)
        tags = {span.tag for span in spans}
        assert all(isinstance(tag, ProbeTag) for tag in tags)
        assert len(tags) == len(spans), "two spans share one (i, n) tag"
        for span in spans:
            assert span.initiator == span.tag.initiator

    def test_hop_latency_split(self) -> None:
        system = run_cycle(4)
        spans = build_spans(system.simulator.tracer)
        delivered = [h for s in spans for h in s.hops if h.delivered]
        assert delivered
        for hop in delivered:
            assert hop.latency is not None and hop.latency > 0
            assert hop.queue_delay is not None and hop.queue_delay >= 0
            assert hop.flight_delay is not None and hop.flight_delay > 0
            # protocol latency decomposes into queue wait + channel flight
            # (+ any gap between delivery event and protocol receipt)
            assert hop.latency >= hop.queue_delay + hop.flight_delay - 1e-9

    def test_meaningful_verdict_recorded_per_hop(self) -> None:
        system = run_cycle(3)
        spans = build_spans(system.simulator.tracer)
        verdicts = {h.meaningful for s in spans for h in s.hops if h.delivered}
        assert verdicts <= {True, False}
        assert True in verdicts, "a dark cycle must see meaningful probes"


class TestFizzledAndSuperseded:
    def test_chain_fizzles(self) -> None:
        system = BasicSystem(n_vertices=5, seed=0)
        scenarios.schedule_chain(system, list(range(5)))
        system.run_to_quiescence()
        spans = build_spans(system.simulator.tracer)
        assert spans
        assert {span.outcome for span in spans} == {SpanOutcome.FIZZLED}
        for span in spans:
            assert span.declared_at is None
            assert span.detection_latency is None

    def test_ping_pong_supersedes_earlier_computations(self) -> None:
        system = BasicSystem(n_vertices=4, seed=0)
        scenarios.schedule_ping_pong(system, [(0, 1), (2, 3)], repetitions=3)
        system.run_to_quiescence()
        spans = build_spans(system.simulator.tracer)
        outcomes = {span.outcome for span in spans}
        assert SpanOutcome.SUPERSEDED in outcomes
        # section 4.3: only the computation with the *highest* n per
        # initiator may be anything other than superseded
        latest: dict[int, int] = {}
        for span in spans:
            latest[span.initiator] = max(
                latest.get(span.initiator, 0), span.tag.sequence
            )
        for span in spans:
            if span.tag.sequence < latest[span.initiator]:
                assert span.outcome is SpanOutcome.SUPERSEDED

    def test_spans_sorted_by_initiation_time(self) -> None:
        system = run_cycle(5)
        spans = build_spans(system.simulator.tracer)
        starts = [s.initiated_at for s in spans if s.initiated_at is not None]
        assert starts == sorted(starts)


class TestSection4Bounds:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_cycle_run_within_bounds(self, k: int) -> None:
        system = run_cycle(k)
        spans = build_spans(system.simulator.tracer)
        check_probe_bounds(spans, n_vertices=k)

    @pytest.mark.parametrize("k", [3, 6])
    def test_at_most_n_probes_on_a_simple_cycle(self, k: int) -> None:
        # the paper's sharpest form: on a simple cycle of N vertices a
        # computation uses at most N probes (one per cycle edge).
        system = run_cycle(k)
        for span in build_spans(system.simulator.tracer):
            assert span.probes_sent <= k
            assert span.max_probes_on_one_edge <= 1

    def test_duplicate_probe_on_one_edge_is_hard_error(self) -> None:
        tag = ProbeTag(initiator=0, sequence=1)
        tracer = Tracer()
        tracer.record(0.0, categories.BASIC_COMPUTATION_INITIATED, vertex=0, tag=tag)
        tracer.record(0.1, categories.BASIC_PROBE_SENT, source=0, target=1, tag=tag)
        tracer.record(0.2, categories.BASIC_PROBE_SENT, source=0, target=1, tag=tag)
        spans = build_spans(tracer)
        (span,) = spans
        assert span.max_probes_on_one_edge == 2
        with pytest.raises(BoundViolation) as exc:
            check_probe_bounds(spans)
        assert "one-probe-per-edge" in str(exc.value)
        assert "(0,1)" in str(exc.value)  # names the offending tag

    def test_total_probe_budget_is_edge_count(self) -> None:
        tag = ProbeTag(initiator=0, sequence=1)
        span = ProbeComputationSpan(tag=tag, initiator=0, initiated_at=0.0)
        # 2 vertices allow at most 2*(2-1) = 2 wait-for edges; 3 distinct
        # edges means the trace claims more edges than the graph can hold.
        for i, edge in enumerate([(0, 1), (1, 0), (0, 2)]):
            span.hops.append(
                ProbeHop(tag=tag, source=edge[0], target=edge[1], edge=edge, sent_at=float(i))
            )
        with pytest.raises(BoundViolation) as exc:
            span.check_bounds(n_vertices=2)
        assert "probes-le-edges" in str(exc.value)

    def test_bound_violation_is_reported_by_cli(self, capsys) -> None:
        # the CLI path turns the exception into a non-zero exit; the happy
        # path is exercised in tests/test_cli.py -- here we check the
        # exception formatting the CLI prints.
        error = BoundViolation("one-probe-per-edge", "two probes on (0, 1)")
        assert str(error) == "bound one-probe-per-edge violated: two probes on (0, 1)"


class TestSlicedTraces:
    def test_receive_without_send_still_builds_a_hop(self) -> None:
        tag = ProbeTag(initiator=2, sequence=1)
        tracer = Tracer()
        tracer.record(
            5.0,
            categories.BASIC_PROBE_RECEIVED,
            source=1,
            target=2,
            tag=tag,
            meaningful=True,
        )
        (span,) = build_spans(tracer)
        assert span.initiated_at is None  # initiation fell outside the slice
        (hop,) = span.hops
        assert hop.sent_at is None
        assert hop.received_at == 5.0
        assert hop.latency is None
        assert span.probes_sent == 0  # unsent hops don't count against bounds
        span.check_bounds(n_vertices=3)

    def test_unrelated_categories_are_ignored(self) -> None:
        tracer = Tracer()
        tracer.record(0.0, categories.BASIC_REQUEST_SENT, source=0, target=1)
        tracer.record(1.0, categories.BASIC_REPLY_SENT, source=1, target=0)
        assert build_spans(tracer) == []


class TestDdbSchema:
    def test_schema_registry_covers_both_models(self) -> None:
        assert SCHEMAS_BY_MODEL == {"basic": BASIC_SPAN_SCHEMA, "ddb": DDB_SPAN_SCHEMA}

    def test_cross_site_deadlock_produces_ddb_spans(self) -> None:
        system = two_site_system()
        cross_deadlock(system)
        system.run_to_quiescence()
        spans = build_spans(system.simulator.tracer, schema=DDB_SPAN_SCHEMA)
        assert spans
        declared = [s for s in spans if s.outcome is SpanOutcome.DEADLOCK]
        assert declared, "cross-site deadlock must be declared by some computation"
        for span in declared:
            assert span.declared_by is not None  # the victim process
        check_probe_bounds(spans)
