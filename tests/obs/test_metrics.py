"""Live metrics layer: primitives, families, registry, transport bridge.

The unit half pins the primitive semantics (monotone counters, gauge
high-water marks, bucketed histograms) and the Prometheus text exposition
(label escaping, cumulative ``_bucket`` series, ``+Inf``).  The
integration half runs a real deadlock through a sim-backed
:class:`~repro.obs.metrics.TransportTelemetry` and checks that what the
families report agrees with what the run actually did.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.basic.system import BasicSystem
from repro.errors import ConfigurationError
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    TelemetryRegistry,
    TransportTelemetry,
)
from repro.obs.spans import BASIC_SPAN_SCHEMA, SpanOutcome


class TestPrimitives:
    def test_counter_is_monotone(self) -> None:
        counter = CounterMetric()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_tracks_high_water_and_observations(self) -> None:
        gauge = GaugeMetric()
        gauge.set(3)
        gauge.set(7)
        gauge.dec(5)
        assert gauge.value == 2
        assert gauge.max == 7
        assert gauge.observations == 3
        with pytest.raises(ValueError, match="NaN"):
            gauge.set(float("nan"))

    def test_histogram_buckets_are_cumulative(self) -> None:
        histogram = HistogramMetric(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.7, 3.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(24.2)
        assert histogram.mean == pytest.approx(6.05)
        assert histogram.cumulative_buckets() == [
            (1.0, 2),
            (5.0, 3),
            (10.0, 3),
            (math.inf, 4),
        ]

    def test_empty_histogram_has_no_mean(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            HistogramMetric(buckets=(1.0,)).mean


class TestRegistry:
    def test_families_memoise_by_name(self) -> None:
        registry = TelemetryRegistry()
        first = registry.counter("repro_x_total", "x", labelnames=("k",))
        again = registry.counter("repro_x_total", "x", labelnames=("k",))
        assert first is again

    def test_kind_and_label_mismatch_are_rejected(self) -> None:
        registry = TelemetryRegistry()
        registry.counter("repro_x_total", labelnames=("k",))
        with pytest.raises(ConfigurationError, match="already declared"):
            registry.gauge("repro_x_total", labelnames=("k",))
        with pytest.raises(ConfigurationError, match="already declared"):
            registry.counter("repro_x_total", labelnames=("other",))

    def test_invalid_names_are_rejected(self) -> None:
        registry = TelemetryRegistry()
        with pytest.raises(ConfigurationError, match="invalid metric name"):
            registry.counter("0-bad")
        with pytest.raises(ConfigurationError, match="invalid label name"):
            registry.counter("repro_ok_total", labelnames=("bad-label",))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            registry.histogram("repro_h", buckets=(5.0, 1.0))

    def test_label_addressing(self) -> None:
        registry = TelemetryRegistry()
        family = registry.counter("repro_msgs_total", labelnames=("src", "dst"))
        family.labels(src=0, dst=1).inc()
        family.labels(src=0, dst=1).inc()
        family.labels(dst=2, src=0).inc()  # keyword order is irrelevant
        assert family.labels(src=0, dst=1).value == 2
        assert family.labels(src=0, dst=2).value == 1
        with pytest.raises(ConfigurationError, match="takes labels"):
            family.labels(src=0)
        with pytest.raises(ConfigurationError, match="address a series"):
            family.inc()  # labelled family has no default child

    def test_prometheus_exposition_format(self) -> None:
        registry = TelemetryRegistry()
        registry.counter("repro_a_total", "things", labelnames=("k",)).labels(
            k='quo"te\n'
        ).inc()
        registry.gauge("repro_b", "level").set(1.5)
        histogram = registry.histogram("repro_c_units", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP repro_a_total things" in text
        assert "# TYPE repro_a_total counter" in text
        assert 'repro_a_total{k="quo\\"te\\n"} 1' in text
        assert "repro_b 1.5" in text
        assert 'repro_c_units_bucket{le="1"} 1' in text
        assert 'repro_c_units_bucket{le="2"} 1' in text
        assert 'repro_c_units_bucket{le="+Inf"} 2' in text
        assert "repro_c_units_sum 5.5" in text
        assert "repro_c_units_count 2" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_able(self) -> None:
        registry = TelemetryRegistry()
        registry.counter("repro_a_total", labelnames=("k",)).labels(k="v").inc()
        registry.histogram("repro_c_units", buckets=(1.0,)).observe(0.5)
        document = json.loads(json.dumps(registry.snapshot()))
        assert document["repro_a_total"]["kind"] == "counter"
        assert document["repro_a_total"]["series"][0] == {
            "labels": {"k": "v"},
            "value": 1.0,
        }
        buckets = document["repro_c_units"]["series"][0]["buckets"]
        assert buckets[-1]["le"] == "+Inf"


class TestTransportTelemetry:
    def run_deadlock(self, **kwargs):
        system = BasicSystem(n_vertices=3, seed=0, trace=False)
        telemetry = TransportTelemetry(
            system.transport,
            schemas=(BASIC_SPAN_SCHEMA,),
            n_vertices=3,
            **kwargs,
        )
        for i in range(3):
            system.schedule_request(0.5 * i, i, [(i + 1) % 3])
        system.run_to_quiescence()
        telemetry.finish()
        return system, telemetry

    def test_counters_agree_with_the_run(self) -> None:
        system, telemetry = self.run_deadlock()
        registry = telemetry.registry
        declared = registry.counter(
            "repro_declarations_total", labelnames=("model",)
        ).labels(model="basic")
        assert declared.value == len(system.declarations) >= 1
        outcomes = registry.counter(
            "repro_computations_total", labelnames=("model", "outcome")
        )
        settled = sum(child.value for child in outcomes.series.values())
        assert settled == telemetry.engines["basic"].emitted > 0
        assert outcomes.labels(model="basic", outcome=SpanOutcome.DEADLOCK.value).value

    def test_in_flight_drains_to_zero(self) -> None:
        _, telemetry = self.run_deadlock()
        depths = telemetry.in_flight_by_destination()
        assert depths, "a 3-cycle run must touch some channel"
        assert all(depth == 0 for depth in depths.values())
        # ... but the channels were used: every gauge saw a positive max
        series = telemetry.registry.gauge(
            "repro_channel_in_flight", labelnames=("src", "dst")
        ).series
        assert all(child.max >= 1 for child in series.values())

    def test_detection_latency_feeds_the_slo_input(self) -> None:
        _, telemetry = self.run_deadlock()
        assert telemetry.detection_latencies
        assert all(latency > 0 for latency in telemetry.detection_latencies)
        histogram = telemetry.registry.histogram(
            "repro_detection_latency_units", labelnames=("model",)
        )
        assert histogram.labels(model="basic").count == len(
            telemetry.detection_latencies
        )

    def test_bounds_hold_and_span_sink_streams(self) -> None:
        streamed: list = []
        _, telemetry = self.run_deadlock(span_sink=streamed.append)
        assert telemetry.bound_violations == 0
        assert len(streamed) == telemetry.engines["basic"].emitted

    def test_snapshot_line_round_trips(self) -> None:
        system, telemetry = self.run_deadlock()
        document = json.loads(telemetry.snapshot_line(system.now))
        assert document["schema"] == "repro.obs.metrics-snapshot/1"
        assert document["now"] == system.now
        assert document["sequence"] == telemetry.snapshots == 1
        assert "repro_messages_total" in document["families"]
        assert "transport_counters" in document

    def test_detach_is_idempotent_and_stops_observation(self) -> None:
        system = BasicSystem(n_vertices=3, seed=0, trace=False)
        telemetry = TransportTelemetry(
            system.transport, schemas=(BASIC_SPAN_SCHEMA,), n_vertices=3
        )
        telemetry.detach()
        telemetry.detach()  # second call is a no-op
        for i in range(3):
            system.schedule_request(0.5 * i, i, [(i + 1) % 3])
        system.run_to_quiescence()
        telemetry.finish()
        messages = telemetry.registry.counter(
            "repro_messages_total", labelnames=("src", "dst", "type")
        )
        assert not messages.series, "detached telemetry must observe nothing"

    def test_trace_false_run_still_buffers_nothing(self) -> None:
        system, _ = self.run_deadlock()
        assert len(system.transport.tracer) == 0
