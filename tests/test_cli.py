"""Tests for the command-line front end."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_returns_error_code(self, capsys) -> None:
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestCommands:
    def test_quickstart(self, capsys) -> None:
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "declared deadlock" in out
        assert "verified" in out

    def test_workloads_lists_every_family(self, capsys) -> None:
        from repro.workloads import family_names

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in family_names():
            assert f"{name}: " in out
        assert "deadlock-capable" in out
        assert "example: " in out

    def test_workloads_filters_by_model(self, capsys) -> None:
        assert main(["workloads", "--model", "ddb"]) == 0
        out = capsys.readouterr().out
        assert "ddb-mix: " in out
        assert "cycle: " not in out

    def test_workloads_unknown_model_exits_1(self, capsys) -> None:
        assert main(["workloads", "--model", "nope"]) == 1
        assert "no registered workload family" in capsys.readouterr().out

    def test_ddb_demo(self, capsys) -> None:
        assert main(["ddb-demo"]) == 0
        out = capsys.readouterr().out
        assert "declared" in out
        assert "no deadlock remains" in out

    def test_or_demo(self, capsys) -> None:
        assert main(["or-demo"]) == 0
        out = capsys.readouterr().out
        assert "OR-deadlock" in out
        assert "verified" in out

    def test_timeline(self, capsys) -> None:
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "DECLARES DEADLOCK" in out

    def test_verify(self, capsys) -> None:
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "FAILED" not in out

    def test_experiment_quick(self, capsys) -> None:
        assert main(["experiment", "E4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out
        assert "within bound" in out

    def test_experiment_lowercase_name(self, capsys) -> None:
        assert main(["experiment", "e4", "--quick"]) == 0
        assert "E4" in capsys.readouterr().out

    def test_spans(self, capsys) -> None:
        assert main(["spans"]) == 0
        out = capsys.readouterr().out
        assert "probe computations" in out
        assert "deadlock" in out
        assert "section 4 bounds OK" in out

    def test_spans_other_scenarios(self, capsys) -> None:
        assert main(["spans", "--scenario", "chain", "--n", "4"]) == 0
        assert "fizzled" in capsys.readouterr().out
        assert main(["spans", "--scenario", "ping-pong"]) == 0
        assert "superseded" in capsys.readouterr().out

    def test_trace_jsonl_round_trips(self, capsys) -> None:
        from repro.obs.export import events_from_jsonl

        assert main(["trace", "--format", "jsonl"]) == 0
        events = events_from_jsonl(capsys.readouterr().out)
        assert events
        assert any(e.category == "basic.deadlock.declared" for e in events)

    def test_trace_chrome_to_file(self, tmp_path, capsys) -> None:
        import json

        from repro.obs.export import validate_chrome

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--format", "chrome", "--out", str(out_path)]) == 0
        assert "written to" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert validate_chrome(document) == []
        assert document["otherData"]["spans"] > 0

    def test_profile(self, capsys) -> None:
        assert main(["profile", "--sample-every", "16"]) == 0
        out = capsys.readouterr().out
        assert "simulator profile" in out
        assert "events/s" in out
        assert "deliver Probe" in out

    def test_experiment_json_export(self, tmp_path, capsys) -> None:
        import json

        assert main(["experiment", "E4", "--quick", "--json", str(tmp_path)]) == 0
        document = json.loads((tmp_path / "e4.json").read_text())
        assert document["experiment"] == "E4"
        assert document["results"]
        assert "json written" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_writes_canonical_document_and_sidecar(self, tmp_path, capsys) -> None:
        import json

        assert main(
            ["sweep", "--grid", "e3", "--quick", "--workers", "2", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
        document = json.loads((tmp_path / "BENCH_e3.json").read_text())
        assert document["schema"] == "repro.sweep/1"
        assert document["summary"]["errors"] == 0
        timing = json.loads((tmp_path / "BENCH_e3.timing.json").read_text())
        assert timing["total"]["wall_seconds"] > 0

    def test_sweep_stdout_when_no_out_dir(self, capsys) -> None:
        import json

        assert main(["sweep", "--grid", "e4", "--quick"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{") :]
        assert json.loads(payload)["grid"] == "e4"

    def test_sweep_unknown_grid_is_an_error(self, capsys) -> None:
        assert main(["sweep", "--grid", "e99"]) == 2
        assert "unknown grid" in capsys.readouterr().out

    def test_sweep_workers_1_vs_2_byte_identical(self, tmp_path) -> None:
        one = tmp_path / "one"
        two = tmp_path / "two"
        assert main(["sweep", "--grid", "e6", "--quick", "--out", str(one)]) == 0
        assert main(
            ["sweep", "--grid", "e6", "--quick", "--workers", "2", "--out", str(two)]
        ) == 0
        assert (one / "BENCH_e6.json").read_bytes() == (two / "BENCH_e6.json").read_bytes()


class TestBenchCommand:
    def test_record_then_check(self, tmp_path, capsys, monkeypatch) -> None:
        from repro.sweep import baseline

        monkeypatch.setattr(
            baseline, "MICRO_BENCHMARKS", {"fake.engine": lambda: (100, 0.001)}
        )
        monkeypatch.setattr(
            baseline, "measure_shapes", lambda grids=("g1",): dict.fromkeys(grids, "abc")
        )
        path = tmp_path / "BENCH_baseline.json"
        assert main(["bench", "record", "--baseline", str(path), "--repeats", "1"]) == 0
        assert "baseline written" in capsys.readouterr().out
        assert main(["bench", "check", "--baseline", str(path), "--repeats", "1"]) == 0
        assert "bench check ok" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys, monkeypatch) -> None:
        from repro.sweep import baseline

        monkeypatch.setattr(
            baseline, "MICRO_BENCHMARKS", {"fake.engine": lambda: (100, 0.001)}
        )
        monkeypatch.setattr(
            baseline, "measure_shapes", lambda grids=("g1",): dict.fromkeys(grids, "abc")
        )
        path = tmp_path / "BENCH_baseline.json"
        assert main(["bench", "record", "--baseline", str(path), "--repeats", "1"]) == 0
        capsys.readouterr()
        monkeypatch.setattr(
            baseline, "MICRO_BENCHMARKS", {"fake.engine": lambda: (100, 0.1)}
        )
        assert main(["bench", "check", "--baseline", str(path), "--repeats", "1"]) == 1
        assert "BENCH CHECK FAILED" in capsys.readouterr().out


class TestMonitorCommand:
    FAST = ["--duration", "0.6", "--interval", "0.2", "--time-scale", "0.002"]

    def test_monitor_json_report(self, capsys) -> None:
        assert main(["monitor", "basic", "--json", *self.FAST]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.monitor-report/1"
        assert document["ok"] and document["detected"]

    def test_monitor_console_and_exports(self, tmp_path, capsys) -> None:
        metrics = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        assert main(
            [
                "monitor",
                "basic",
                "--metrics-out",
                str(metrics),
                "--spans-out",
                str(spans),
                *self.FAST,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[monitor basic scenario=deadlock" in out
        assert "spans streamed:" in out
        assert "FAILED" not in out
        assert "repro_computations_total" in metrics.read_text()
        assert spans.read_text().strip()

    def test_monitor_clean_scenario(self, capsys) -> None:
        assert main(["monitor", "basic", "--scenario", "clean", "--json", *self.FAST]) == 0
        assert json.loads(capsys.readouterr().out)["detected"] is False

    def test_monitor_unknown_variant_is_an_error(self, capsys) -> None:
        assert main(["monitor", "nope", *self.FAST]) == 2
        assert "unknown detector variant" in capsys.readouterr().out

    def test_monitor_impossible_slo_exits_nonzero(self, capsys) -> None:
        assert main(["monitor", "basic", "--slo", "1e-9", "--json", *self.FAST]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["slo_violations"] > 0 and not document["ok"]
