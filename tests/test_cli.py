"""Tests for the command-line front end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_returns_error_code(self, capsys) -> None:
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestCommands:
    def test_quickstart(self, capsys) -> None:
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "declared deadlock" in out
        assert "verified" in out

    def test_ddb_demo(self, capsys) -> None:
        assert main(["ddb-demo"]) == 0
        out = capsys.readouterr().out
        assert "declared" in out
        assert "no deadlock remains" in out

    def test_or_demo(self, capsys) -> None:
        assert main(["or-demo"]) == 0
        out = capsys.readouterr().out
        assert "OR-deadlock" in out
        assert "verified" in out

    def test_timeline(self, capsys) -> None:
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "DECLARES DEADLOCK" in out

    def test_verify(self, capsys) -> None:
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "FAILED" not in out

    def test_experiment_quick(self, capsys) -> None:
        assert main(["experiment", "E4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out
        assert "within bound" in out

    def test_experiment_lowercase_name(self, capsys) -> None:
        assert main(["experiment", "e4", "--quick"]) == 0
        assert "E4" in capsys.readouterr().out

    def test_spans(self, capsys) -> None:
        assert main(["spans"]) == 0
        out = capsys.readouterr().out
        assert "probe computations" in out
        assert "deadlock" in out
        assert "section 4 bounds OK" in out

    def test_spans_other_scenarios(self, capsys) -> None:
        assert main(["spans", "--scenario", "chain", "--n", "4"]) == 0
        assert "fizzled" in capsys.readouterr().out
        assert main(["spans", "--scenario", "ping-pong"]) == 0
        assert "superseded" in capsys.readouterr().out

    def test_trace_jsonl_round_trips(self, capsys) -> None:
        from repro.obs.export import events_from_jsonl

        assert main(["trace", "--format", "jsonl"]) == 0
        events = events_from_jsonl(capsys.readouterr().out)
        assert events
        assert any(e.category == "basic.deadlock.declared" for e in events)

    def test_trace_chrome_to_file(self, tmp_path, capsys) -> None:
        import json

        from repro.obs.export import validate_chrome

        out_path = tmp_path / "trace.json"
        assert main(["trace", "--format", "chrome", "--out", str(out_path)]) == 0
        assert "written to" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert validate_chrome(document) == []
        assert document["otherData"]["spans"] > 0

    def test_profile(self, capsys) -> None:
        assert main(["profile", "--sample-every", "16"]) == 0
        out = capsys.readouterr().out
        assert "simulator profile" in out
        assert "events/s" in out
        assert "deliver Probe" in out

    def test_experiment_json_export(self, tmp_path, capsys) -> None:
        import json

        assert main(["experiment", "E4", "--quick", "--json", str(tmp_path)]) == 0
        document = json.loads((tmp_path / "e4.json").read_text())
        assert document["experiment"] == "E4"
        assert document["results"]
        assert "json written" in capsys.readouterr().out
