"""E3 -- section 4.3: probe-message complexity.

Paper predictions: at most one probe per edge per computation; hence at
most N probes per computation on an N-cycle (E edges in general), i.e.
probe volume linear in the cycle length.
"""

from repro.experiments import e3_messages

from benchmarks.conftest import run_experiment


def test_e3_message_complexity(benchmark, record_table):
    table, results = run_experiment(benchmark, e3_messages)
    record_table("E3", table.render())
    for result in results:
        assert result.within_bound, (
            f"{result.label}: {result.max_probes_per_computation} probes "
            f"exceeds bound {result.bound}"
        )
        assert result.max_probes_per_edge == 1
    # Linear scaling on cycles: probes/computation equals the cycle length.
    cycles = [r for r in results if r.label.endswith("-cycle")]
    for result in cycles:
        assert result.max_probes_per_computation == result.bound
