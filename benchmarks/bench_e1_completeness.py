"""E1 -- Theorem 1 (completeness): every true deadlock is detected.

Paper prediction: zero missed deadlocks across all workloads (QRP1 plus
the section 4.2 initiation rule).
"""

from repro.experiments import e1_completeness

from benchmarks.conftest import run_experiment


def test_e1_completeness(benchmark, record_table):
    table, results = run_experiment(benchmark, e1_completeness)
    record_table("E1", table.render())
    assert results, "experiment produced no results"
    # Shape claim: nothing is ever missed.
    for result in results:
        assert result.missed == 0, f"{result.label} missed {result.missed} deadlocks"
    # The workloads genuinely produced deadlocks (the claim is not vacuous).
    assert sum(result.components_formed for result in results) > 0
