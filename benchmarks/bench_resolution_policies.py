"""Ablation bench: victim-selection policies (resolution extension).

Not a paper claim (the paper defers resolution) but a DESIGN.md ablation
with a real tradeoff, measured from two angles:

* **duplicate-abort episodes** -- several *independent* cross-site
  deadlocks detected concurrently from both sides.  Per-declarer victims
  (AbortAboutTransaction) abort both members of every pair; the
  deterministic shared victim (AbortLowestTransactionInCycle) aborts
  exactly one -- a 2x reduction, exact and deterministic.
* **sustained contention** -- the same transactions re-deadlock across
  restarts.  Here the *static* priority backfires: the lowest-numbered
  transaction keeps being the victim, re-deadlocks, and is victimised
  again, so total aborts can exceed the naive policy's.  (This is why
  production schemes -- wound-wait etc. -- use priorities that persist
  across restarts so every transaction eventually wins.)

The bench asserts the exact first effect and reports the second.
"""

from repro.ddb.resolution import AbortAboutTransaction, AbortLowestTransactionInCycle
from repro.ddb.system import DdbSystem
from repro.ddb.transaction import Think, TransactionExecution, acquire
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

from benchmarks.conftest import full_mode


def run_parallel_pairs(policy_factory, n_pairs: int) -> dict:
    """``n_pairs`` disjoint cross-site deadlocks, each detected from both
    sides concurrently; victims restart and everything commits."""
    from repro._ids import ResourceId, SiteId, TransactionId
    from repro.ddb.locks import LockMode

    X = LockMode.EXCLUSIVE
    resources = {
        ResourceId(f"r{i}"): SiteId(i % (2 * n_pairs)) for i in range(2 * n_pairs)
    }
    system = DdbSystem(
        n_sites=2 * n_pairs, resources=resources, resolution=policy_factory(),
        trace=False,
    )

    def restart(execution: TransactionExecution, aborted: bool) -> None:
        if aborted:
            system.restart(execution.spec.tid, delay=3.0 + 2.0 * int(execution.spec.tid))

    system.finished_callback = restart
    from repro.ddb.transaction import TransactionSpec

    tid = 1
    for pair in range(n_pairs):
        site_a, site_b = 2 * pair, 2 * pair + 1
        ra, rb = f"r{site_a}", f"r{site_b}"
        for home, first, second in ((site_a, ra, rb), (site_b, rb, ra)):
            system.begin(
                TransactionSpec(
                    tid=TransactionId(tid),
                    home=SiteId(home),
                    operations=(acquire((first, X)), Think(1.0), acquire((second, X))),
                ),
                at=0.05 * tid,
            )
            tid += 1
    system.run_to_quiescence(max_events=1_000_000)
    system.assert_no_deadlock_remains()
    return {
        "aborts": system.metrics.counter_value("ddb.txn.aborted"),
        "commits": sum(r.commits for r in system.transactions.values()),
    }


def run_contended(policy_factory, seeds) -> dict:
    total_aborts = total_commits = 0
    for seed in seeds:
        system = DdbSystem(
            n_sites=3, resources=6, seed=seed, resolution=policy_factory(),
            trace=False,
        )
        workload = TransactionWorkload(
            system,
            WorkloadParams(
                n_transactions=12,
                remote_probability=1.0,
                read_ratio=0.0,
                hotspot_probability=0.6,
                hotspot_size=2,
                mean_think=1.0,
                arrival_window=6.0,
                restart_horizon=3000.0,
            ),
        )
        workload.start()
        system.run_to_quiescence(max_events=2_000_000)
        system.assert_no_deadlock_remains()
        total_aborts += workload.stats.aborts
        total_commits += workload.stats.commits
    return {"aborts": total_aborts, "commits": total_commits}


def test_resolution_policy_ablation(benchmark, record_table):
    seeds = tuple(range(8)) if full_mode() else tuple(range(3))
    n_pairs = 4

    def run():
        return {
            ("parallel pairs", "abort declared"): run_parallel_pairs(
                AbortAboutTransaction, n_pairs
            ),
            ("parallel pairs", "abort lowest in cycle"): run_parallel_pairs(
                AbortLowestTransactionInCycle, n_pairs
            ),
            ("sustained contention", "abort declared"): run_contended(
                AbortAboutTransaction, seeds
            ),
            ("sustained contention", "abort lowest in cycle"): run_contended(
                AbortLowestTransactionInCycle, seeds
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis.tables import Table

    table = Table(
        "Ablation: victim-selection policies (resolution extension)",
        ["workload", "policy", "commits", "aborts"],
    )
    for (workload, policy), outcome in results.items():
        table.add_row(workload, policy, outcome["commits"], outcome["aborts"])
    record_table("resolution_ablation", table.render())

    pairs_about = results[("parallel pairs", "abort declared")]
    pairs_lowest = results[("parallel pairs", "abort lowest in cycle")]
    # Exact duplicate-abort effect: both controllers of each pair detect;
    # per-declarer victims abort both members, the shared victim only one.
    assert pairs_about["commits"] == pairs_lowest["commits"] == 2 * n_pairs
    assert pairs_about["aborts"] == 2 * n_pairs
    assert pairs_lowest["aborts"] == n_pairs
    # Sustained contention: both policies keep the system live (everything
    # commits); the abort totals are reported, not ranked -- static
    # priority trades duplicate aborts for repeat victimisation.
    for key in results:
        if key[0] == "sustained contention":
            assert results[key]["commits"] == 12 * len(seeds)
