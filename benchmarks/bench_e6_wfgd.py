"""E6 -- section 5: WFGD propagation.

Paper predictions: the computation terminates, and every vertex with a
permanent black path leading from it learns exactly those paths.
"""

from repro.experiments import e6_wfgd

from benchmarks.conftest import run_experiment


def test_e6_wfgd(benchmark, record_table):
    table, results = run_experiment(benchmark, e6_wfgd)
    record_table("E6", table.render())
    for result in results:
        assert result.deadlocked_vertices > 0
        assert result.all_informed_exactly, (
            f"{result.label}: {result.informed_vertices}/"
            f"{result.deadlocked_vertices} informed, "
            f"{result.exact_path_sets} exact"
        )
        assert result.wfgd_messages > 0
