"""E8 -- correctness and cost vs 1980-era baselines.

Paper prediction (the introduction's motivating claim): the probe
computation is the only detector with zero false positives on both
workload families, while the baselines either poll expensively
(centralized), relay stale state (path pushing), or guess (timeout).
"""

from repro.experiments import e8_baselines

from benchmarks.conftest import run_experiment


def test_e8_baselines(benchmark, record_table):
    table, results = run_experiment(benchmark, e8_baselines)
    record_table("E8", table.render())
    cmh = [r for r in results if "probe computation" in r.detector]
    others = [r for r in results if "probe computation" not in r.detector]
    # The paper's algorithm: zero phantoms on every family, while finding
    # the real deadlocks in the family that has them.
    assert all(r.false_detections == 0 for r in cmh)
    assert any(r.true_detections > 0 for r in cmh)
    # At least one baseline produces phantoms on each family's failure mode.
    random_family = [r for r in others if r.workload.startswith("random")]
    ping_pong_family = [r for r in others if r.workload.startswith("ping-pong")]
    assert any(r.false_detections > 0 for r in random_family)
    assert any(r.false_detections > 0 for r in ping_pong_family)
    # Centralized polling costs messages even when nothing is blocked.
    centralized = [r for r in others if r.detector.startswith("centralized")]
    assert all(r.messages > c.messages for r, c in zip(centralized, cmh))
    # The Chandy-Lamport snapshot detector brackets the probe computation
    # from the correct side: zero phantoms everywhere (deadlock is stable,
    # consistent cuts cannot lie) but at a message cost an order of
    # magnitude above probe traffic.
    snapshots = [r for r in others if r.detector.startswith("snapshots")]
    assert snapshots
    assert all(r.false_detections == 0 for r in snapshots)
    assert all(r.true_detections > 0 for r in snapshots if "random" in r.workload)
    assert all(r.messages > 3 * c.messages for r, c in zip(snapshots, cmh))
