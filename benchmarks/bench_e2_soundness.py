"""E2 -- Theorem 2 (soundness): deadlocks are never reported falsely.

Paper prediction: zero unsound declarations on every history.
"""

from repro.experiments import e2_soundness

from benchmarks.conftest import run_experiment


def test_e2_soundness(benchmark, record_table):
    table, results = run_experiment(benchmark, e2_soundness)
    record_table("E2", table.render())
    for result in results:
        assert result.unsound == 0, f"{result.label}: {result.unsound} unsound"
    # The claim is exercised: real declarations happened in these runs.
    assert sum(result.declarations for result in results) > 0
