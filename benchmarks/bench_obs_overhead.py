"""Observability overhead: tracing must be free when nobody is watching.

The streaming telemetry layer (``repro.obs.stream`` / ``repro.obs.metrics``)
rides :meth:`repro.sim.trace.Tracer.subscribe`; the cost model that makes
``repro monitor`` honest is that a run which is *not* monitored pays
nothing for the instrumentation points scattered through the network and
the protocol handlers.  Two configurations matter:

* **idle** -- ``trace=False``, no subscribers: every ``tracer.wants`` /
  ``record`` call must short-circuit on the precomputed
  :attr:`~repro.sim.trace.Tracer.idle` flag (one attribute read).
* **cold-subscribed** -- a category-scoped subscriber is attached, but
  to categories the hot path never emits: every call now passes the
  idle check and misses the category dict.  This is the worst case of
  "monitoring attached elsewhere"; it must stay within 2% of idle.

The comparison runs on the bare FIFO network (its per-message
``net.sent``/``net.delivered`` guards are the hottest tracing sites in
the engine); protocol systems attach their own category observers, so
they are *always* in the cold-subscribed regime -- which is exactly why
the cold path must be cheap.  The monitor configuration itself (span
engine subscribed, ``trace=False``) is benchmarked end to end below and
its absolute throughput is ratcheted in ``BENCH_baseline.json``
(micro-benchmark ``obs.monitor_stream`` via ``repro bench``).
"""

from __future__ import annotations

import time

from repro.basic.system import BasicSystem
from repro.sim import categories
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.workloads.scenarios import schedule_cycle

#: messages per timed network run; big enough that one run is tens of
#: milliseconds (amortising timer resolution and scheduler jitter),
#: small enough that the interleaved repeats stay fast.
N_MESSAGES = 20_000
N_VERTICES = 48
REPEATS = 7
#: allowed overhead of the cold-subscribed path over the idle path.
OVERHEAD_BUDGET = 0.02


class _Sink(Process):
    def on_message(self, sender, message):
        pass


def _run_network(subscribe_cold: bool) -> float:
    """One timed 5k-message network run; returns wall seconds."""
    simulator = Simulator(seed=0, trace=False)
    if subscribe_cold:
        # A real category-scoped subscription (the monitor's mechanism),
        # but on a category this run never emits: every net.sent /
        # net.delivered guard pays the full non-idle dispatch and misses.
        simulator.tracer.subscribe(
            lambda event: None, categories=(categories.PROFILE_QUEUE_SAMPLED,)
        )
    network = Network(simulator)
    source = _Sink(0)
    network.register(source)
    network.register(_Sink(1))
    for i in range(N_MESSAGES):
        source.send(1, i)
    started = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - started
    assert simulator.events_executed >= N_MESSAGES
    return elapsed


def test_tracer_idle_flag_tracks_subscriptions():
    """The precondition of the fast path: trace=False and no subscribers
    leaves the tracer idle; any subscription wakes it; unsubscribing
    restores it.  (Protocol systems attach observers of their own, so
    only the bare engine is ever fully idle -- see the module docstring.)"""
    simulator = Simulator(seed=0, trace=False)
    tracer = simulator.tracer
    assert tracer.idle

    def listener(event):
        raise AssertionError("cold category must never fire")

    tracer.subscribe(listener, categories=(categories.PROFILE_QUEUE_SAMPLED,))
    assert not tracer.idle
    tracer.unsubscribe(listener)
    assert tracer.idle

    # The enabled flag alone also wakes the tracer (events must buffer).
    tracer.enabled = True
    assert not tracer.idle
    tracer.enabled = False
    assert tracer.idle


def test_cold_subscription_overhead_under_budget():
    """Interleaved min-of-N: cold-subscribed within 2% of fully idle.

    Interleaving (idle, cold, idle, cold, ...) exposes both variants to
    the same thermal/scheduler drift; taking the min of each damps noise
    the standard way.  The assertion carries two retries to keep
    scheduler hiccups on a shared runner from failing the suite -- three
    consecutive breaches of the budget is a real regression.
    """

    def measure() -> tuple[float, float]:
        # Warm both code paths (allocator, bytecode caches) before timing;
        # the first cold-subscribed run of a process is reliably slower.
        _run_network(subscribe_cold=False)
        _run_network(subscribe_cold=True)
        idle = float("inf")
        cold = float("inf")
        for _ in range(REPEATS):
            idle = min(idle, _run_network(subscribe_cold=False))
            cold = min(cold, _run_network(subscribe_cold=True))
        return idle, cold

    overhead = 0.0
    for attempt in range(3):
        idle, cold = measure()
        overhead = cold / idle - 1.0
        print(
            f"\n[obs overhead attempt {attempt + 1}: idle {idle * 1e3:.2f} ms, "
            f"cold-subscribed {cold * 1e3:.2f} ms, overhead {overhead:+.2%} "
            f"(budget {OVERHEAD_BUDGET:.0%})]"
        )
        if overhead <= OVERHEAD_BUDGET:
            return
    raise AssertionError(
        f"cold-subscribed tracing overhead {overhead:+.2%} exceeded the "
        f"{OVERHEAD_BUDGET:.0%} budget in three consecutive measurements"
    )


def test_monitored_run_produces_spans_without_buffering(benchmark):
    """The monitor configuration end to end: telemetry subscribed through
    the shared :func:`~repro.obs.metrics.telemetry_for_variant` helper
    (the same attachment path ``repro monitor`` and the cluster
    coordinator use -- no direct tracer plumbing here), trace=False --
    throughput benchmark plus the bounded-memory claim."""
    from repro.core.registry import get_variant
    from repro.obs.metrics import telemetry_for_variant

    capabilities = get_variant("basic").capabilities

    def run() -> tuple[int, int]:
        system = BasicSystem(n_vertices=N_VERTICES, seed=0, trace=False)
        telemetry = telemetry_for_variant(
            system.transport, capabilities, n_vertices=N_VERTICES
        )
        schedule_cycle(system, list(range(N_VERTICES)), gap=0.1)
        system.run_to_quiescence()
        telemetry.finish()
        emitted = sum(engine.emitted for engine in telemetry.engines.values())
        return emitted, len(system.transport.tracer)

    emitted, buffered = benchmark(run)
    assert emitted >= 1
    assert buffered == 0, "a monitored trace=False run must buffer no events"
