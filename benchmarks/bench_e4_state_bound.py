"""E4 -- section 4.3: per-vertex detector state is O(N).

Paper prediction: each vertex tracks at most one record per initiator (the
latest computation), so records never exceed N regardless of how many
computations run.
"""

from repro.experiments import e4_state

from benchmarks.conftest import run_experiment


def test_e4_state_bound(benchmark, record_table):
    table, results = run_experiment(benchmark, e4_state)
    record_table("E4", table.render())
    for result in results:
        assert result.within_bound
        # Far more computations ran than records are retained.
        assert result.computations_initiated > result.max_tracked_records
