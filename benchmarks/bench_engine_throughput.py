"""Engine micro-benchmarks: raw cost of the substrate and the detector.

These are conventional performance benchmarks (multiple rounds, real
timing): events/second of the simulator core, message throughput of the
FIFO network, and end-to-end cost of detecting one large-cycle deadlock.
They track regressions in the hot paths every experiment depends on.
"""

from repro.basic.system import BasicSystem
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.workloads.scenarios import schedule_cycle


def test_event_loop_throughput(benchmark, bench_baseline):
    """Schedule-and-run 10k trivial events."""

    def run() -> int:
        simulator = Simulator(seed=0, trace=False)
        for i in range(10_000):
            simulator.schedule(float(i % 97) * 0.01, lambda: None)
        simulator.run()
        return simulator.events_executed

    executed = benchmark(run)
    assert executed == 10_000
    recorded = bench_baseline.get("throughput", {}).get("engine.event_loop")
    if recorded:
        mean = benchmark.stats.stats.mean
        print(
            f"\n[engine.event_loop: {executed / mean:,.0f} ev/s here vs "
            f"{recorded:,.0f} recorded in BENCH_baseline.json (run-only timing)]"
        )


class _Sink(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = 0

    def on_message(self, sender, message):
        self.received += 1


def test_network_throughput(benchmark):
    """Send 5k messages through the FIFO network."""

    def run() -> int:
        simulator = Simulator(seed=0, trace=False)
        network = Network(simulator)
        source = _Sink(0)
        sink = _Sink(1)
        network.register(source)
        network.register(sink)
        for i in range(5_000):
            source.send(1, i)
        simulator.run()
        return sink.received

    received = benchmark(run)
    assert received == 5_000


def test_large_cycle_detection(benchmark):
    """Detect a 64-cycle deadlock end to end (tracing disabled)."""

    def run() -> int:
        system = BasicSystem(n_vertices=64, seed=0, trace=False)
        schedule_cycle(system, list(range(64)), gap=0.1)
        system.run_to_quiescence()
        system.assert_soundness()
        return len(system.declarations)

    declarations = benchmark(run)
    assert declarations >= 1


def test_ddb_contention_round(benchmark):
    """One contended DDB round: ring deadlock, detection, resolution."""
    from repro._ids import ResourceId, SiteId, TransactionId
    from repro.ddb.locks import LockMode
    from repro.ddb.resolution import AbortAboutTransaction
    from repro.ddb.system import DdbSystem
    from repro.ddb.transaction import Think, TransactionSpec, acquire

    def run() -> int:
        n = 6
        resources = {ResourceId(f"r{i}"): SiteId(i) for i in range(n)}
        system = DdbSystem(
            n_sites=n,
            resources=resources,
            resolution=AbortAboutTransaction(),
            trace=False,
        )

        def restart(execution, aborted):
            if aborted:
                system.restart(
                    execution.spec.tid, delay=3.0 + 4.0 * int(execution.spec.tid)
                )

        system.finished_callback = restart
        for i in range(n):
            system.begin(
                TransactionSpec(
                    tid=TransactionId(i + 1),
                    home=SiteId(i),
                    operations=(
                        acquire((f"r{i}", LockMode.EXCLUSIVE)),
                        Think(1.0),
                        acquire((f"r{(i + 1) % n}", LockMode.EXCLUSIVE)),
                    ),
                ),
                at=0.05 * i,
            )
        system.run_to_quiescence(max_events=500_000)
        return sum(record.commits for record in system.transactions.values())

    commits = benchmark(run)
    assert commits == 6
