"""Extension bench: the OR/communication-model detector (paper section 7).

Shape claims measured:

* the any/all difference is real: topologies that deadlock under AND
  semantics dissolve under OR semantics when any alternative is active,
  and vice versa only genuine knots deadlock;
* query/reply complexity: one engaging query per edge of the dependency
  closure plus at most one non-engaging echo per edge, and exactly one
  reply per query that is answered -- traffic linear in closure edges per
  computation;
* soundness and completeness over the structured scenarios.
"""

from repro.basic.system import BasicSystem
from repro.ormodel.system import OrSystem

from benchmarks.conftest import full_mode


def run_or_cycle(k: int) -> dict:
    system = OrSystem(n_vertices=k, trace=False)
    for i in range(k):
        system.schedule_request(0.5 * i, i, [(i + 1) % k])
    system.run_to_quiescence()
    system.assert_soundness()
    system.assert_completeness()
    return {
        "declared": len(system.declarations),
        "queries": system.metrics.counter_value("or.queries.sent"),
        "replies": system.metrics.counter_value("or.replies.sent"),
        "computations": system.metrics.counter_value("or.computations.initiated"),
    }


def run_any_alternative(k: int) -> dict:
    """A k-cycle where vertex 0 also waits on an active escape vertex."""
    system = OrSystem(n_vertices=k + 1, trace=False)
    system.schedule_request(0.0, 0, [1, k])
    for i in range(1, k):
        system.schedule_request(0.5 * i, i, [(i + 1) % k])
    system.run_to_quiescence()
    system.assert_soundness()
    return {
        "declared": len(system.declarations),
        "all_active": all(v.active for v in system.vertices.values()),
    }


def run_and_same_topology(k: int) -> dict:
    system = BasicSystem(n_vertices=k + 1, trace=False)
    system.schedule_request(0.0, 0, [1, k])
    for i in range(1, k):
        system.schedule_request(0.5 * i, i, [(i + 1) % k])
    system.run_to_quiescence()
    system.assert_soundness()
    return {"declared": len(system.declarations)}


def test_or_model_extension(benchmark, record_table):
    sizes = (2, 3, 5, 8, 16) if full_mode() else (2, 3, 5, 8)

    def run():
        return {
            "cycles": {k: run_or_cycle(k) for k in sizes},
            "alternative_or": {k: run_any_alternative(k) for k in sizes},
            "alternative_and": {k: run_and_same_topology(k) for k in sizes},
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis.tables import Table

    table = Table(
        "Extension (section 7): OR/communication-model detector",
        ["scenario", "k", "declared", "queries", "replies"],
    )
    for k, outcome in results["cycles"].items():
        table.add_row("OR k-cycle (deadlock)", k, outcome["declared"],
                      outcome["queries"], outcome["replies"])
    for k, outcome in results["alternative_or"].items():
        table.add_row("OR cycle + active alternative", k, outcome["declared"], 0, 0)
    record_table("or_model", table.render())

    for k, outcome in results["cycles"].items():
        # Every OR cycle is detected ...
        assert outcome["declared"] >= 1
        # ... within linear traffic: per computation at most one engaging
        # query and one echo per closure edge (k edges on a k-cycle).
        assert outcome["queries"] <= 2 * k * outcome["computations"]
        assert outcome["replies"] <= outcome["queries"]
    for k, outcome in results["alternative_or"].items():
        # The any/all difference: OR semantics dissolve the wait ...
        assert outcome["declared"] == 0
        assert outcome["all_active"]
        # ... while AND semantics on the same topology deadlock.
        assert results["alternative_and"][k]["declared"] >= 1
