"""E7 -- section 6.7: Q-initiation vs naive per-process initiation.

Paper prediction: the optimised rule (local-cycle check, then only
processes with incoming black inter-controller edges) initiates strictly
fewer computations than one-per-blocked-process, while still detecting
every deadlock.
"""

from repro.experiments import e7_q_optimization

from benchmarks.conftest import run_experiment


def test_e7_q_optimization(benchmark, record_table):
    table, results = run_experiment(benchmark, e7_q_optimization)
    record_table("E7", table.render())
    by_label: dict[str, dict[str, object]] = {}
    for result in results:
        by_label.setdefault(result.label, {})[result.mode] = result
    assert by_label
    for label, modes in by_label.items():
        naive = modes["naive"]
        optimised = modes["6.7 optimised"]
        assert naive.detected and optimised.detected, label
        assert optimised.computations < naive.computations, label
        assert optimised.probes <= naive.probes, label
