"""E5 -- section 4.3: the delayed-initiation T tradeoff.

Paper predictions: computations initiated fall (weakly) as T grows;
detection latency is at least T and grows with it; completeness holds for
every T.
"""

from repro.experiments import e5_t_tradeoff

from benchmarks.conftest import run_experiment


def test_e5_t_tradeoff(benchmark, record_table):
    table, results = run_experiment(benchmark, e5_t_tradeoff)
    record_table("E5", table.render())
    delayed = [r for r in results if r.timeout is not None]
    assert len(delayed) >= 3
    # Same workload at every T (delay streams are per message type), so
    # the same deadlocks form everywhere.
    formed = {r.components_formed for r in results}
    assert len(formed) == 1
    # Completeness at every T.
    for result in results:
        assert result.components_detected == result.components_formed
    # Tradeoff, wing to wing: small T initiates more computations than
    # large T; large T pays more latency, bounded below by T.
    assert delayed[0].computations > delayed[-1].computations
    assert delayed[0].avoided < delayed[-1].avoided
    latencies = [r.mean_latency for r in delayed if r.mean_latency is not None]
    assert latencies[0] < latencies[-1]
    for result in delayed:
        if result.mean_latency is not None and result.timeout:
            assert result.mean_latency >= result.timeout
