"""Shared infrastructure for the benchmark harness.

Each ``bench_e*.py`` regenerates one experiment table (see DESIGN.md's
experiment index), times it under pytest-benchmark, asserts the *shape*
claims the paper makes, and writes the rendered table to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md stays regenerable:

    pytest benchmarks/ --benchmark-only

Experiments run in ``quick`` mode by default so the whole harness stays
within a few minutes; set ``REPRO_BENCH_FULL=1`` for the full sweeps used
to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick-tier baseline maintained by ``repro bench record`` / checked in CI
#: by ``repro bench check`` (see ``repro.sweep.baseline``).
BASELINE_PATH = Path(__file__).parent / "BENCH_baseline.json"


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def bench_baseline() -> dict:
    """The committed quick-tier baseline document (empty dict if absent).

    ``throughput`` maps micro-benchmark names to events/sec recorded on the
    reference machine; ``shapes`` maps grid names to the SHA-256 of their
    canonical quick-sweep documents.  Benchmarks can use it to annotate
    reports; the hard regression gate lives in ``repro bench check``.
    """
    if not BASELINE_PATH.exists():
        return {}
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


@pytest.fixture
def record_table():
    """Write a rendered experiment table under benchmarks/results/."""

    def write(experiment_id: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        path.write_text(rendered + "\n")
        print(f"\n{rendered}\n[written to {path}]")

    return write


def run_experiment(benchmark, module):
    """Time one experiment run (a single round: experiments are long)."""
    quick = not full_mode()
    return benchmark.pedantic(
        lambda: module.run(quick=quick), rounds=1, iterations=1
    )
