"""Shared infrastructure for the benchmark harness.

Each ``bench_e*.py`` regenerates one experiment table (see DESIGN.md's
experiment index), times it under pytest-benchmark, asserts the *shape*
claims the paper makes, and writes the rendered table to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md stays regenerable:

    pytest benchmarks/ --benchmark-only

Experiments run in ``quick`` mode by default so the whole harness stays
within a few minutes; set ``REPRO_BENCH_FULL=1`` for the full sweeps used
to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def record_table():
    """Write a rendered experiment table under benchmarks/results/."""

    def write(experiment_id: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        path.write_text(rendered + "\n")
        print(f"\n{rendered}\n[written to {path}]")

    return write


def run_experiment(benchmark, module):
    """Time one experiment run (a single round: experiments are long)."""
    quick = not full_mode()
    return benchmark.pedantic(
        lambda: module.run(quick=quick), rounds=1, iterations=1
    )
