"""Extension bench: detection (this paper) vs prevention (wait-die /
wound-wait) on identical DDB workloads.

The design-space comparison the paper's approach implies: let deadlocks
happen and detect them precisely (probe computations + victim aborts), or
prevent them outright with timestamp ordering (Rosenkrantz et al. 1978).

Shape claims asserted:

* all three schemes keep the workload live (everything commits);
* detection only aborts transactions that were genuinely deadlocked
  (aborts <= declarations-worth of real cycles); prevention schemes abort
  on *suspicion* -- their abort counts meet or exceed detection's on
  contended workloads while their detection-message count is zero;
* prevention sends zero probes; detection sends probes proportional to
  blocking.
"""

from repro.ddb.initiation import DdbManualInitiation
from repro.ddb.prevention import WaitDie, WoundWait
from repro.ddb.resolution import AbortLowestTransactionInCycle
from repro.ddb.system import DdbSystem
from repro.workloads.transactions import TransactionWorkload, WorkloadParams

from benchmarks.conftest import full_mode

PARAMS = dict(
    n_transactions=12,
    remote_probability=1.0,
    read_ratio=0.0,
    hotspot_probability=0.6,
    hotspot_size=2,
    mean_think=1.0,
    arrival_window=6.0,
    restart_horizon=4000.0,
)


def run_scheme(seeds, *, prevention=None, resolution=None, initiation=None) -> dict:
    commits = aborts = probes = 0
    for seed in seeds:
        system = DdbSystem(
            n_sites=3,
            resources=6,
            seed=seed,
            prevention=prevention,
            resolution=resolution,
            initiation=initiation,
            trace=False,
        )
        workload = TransactionWorkload(system, WorkloadParams(**PARAMS))
        workload.start()
        system.run_to_quiescence(max_events=3_000_000)
        system.assert_no_deadlock_remains()
        commits += workload.stats.commits
        aborts += workload.stats.aborts
        probes += system.metrics.counter_value("ddb.probes.sent")
    return {"commits": commits, "aborts": aborts, "probes": probes}


def test_prevention_vs_detection(benchmark, record_table):
    seeds = tuple(range(6)) if full_mode() else tuple(range(3))

    def run():
        return {
            "detection (probe computation)": run_scheme(
                seeds, resolution=AbortLowestTransactionInCycle()
            ),
            "prevention: wait-die": run_scheme(
                seeds, prevention=WaitDie(), initiation=DdbManualInitiation()
            ),
            "prevention: wound-wait": run_scheme(
                seeds, prevention=WoundWait(), initiation=DdbManualInitiation()
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis.tables import Table

    table = Table(
        "Extension: detection vs prevention on identical DDB workloads",
        ["scheme", "commits", "aborts", "probe messages"],
    )
    for scheme, outcome in results.items():
        table.add_row(scheme, outcome["commits"], outcome["aborts"], outcome["probes"])
    record_table("prevention_vs_detection", table.render())

    expected_commits = 12 * len(seeds)
    for scheme, outcome in results.items():
        assert outcome["commits"] == expected_commits, scheme
    detection = results["detection (probe computation)"]
    assert detection["probes"] > 0
    for scheme in ("prevention: wait-die", "prevention: wound-wait"):
        assert results[scheme]["probes"] == 0
